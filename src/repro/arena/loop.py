"""The closed-loop adversarial arms race.

:func:`run_arena` pits an evolving attack population against the current
detector, generation by generation:

1. **evaluate** — every genome is simulated in an isolated worker
   (:mod:`repro.arena.workers`); the parent scores its windows against
   the *incumbent* detector.  Fitness is the evasion rate (fraction of
   windows the detector misses) — but only genomes whose channel
   actually **leaked** are eligible to survive, so evolution cannot
   "win" by breeding duds;
2. **re-vaccinate** — the survivors' windows are folded into the
   training corpus as an ``arena-evolved`` attack class and the full
   AM-GAN pipeline retrains a candidate detector under a
   :class:`~repro.ml.resilience.TrainingGuard`;
3. **gate** — the candidate must pass the held-out regression gate
   (:mod:`repro.arena.gate`) before promotion; a failing candidate is
   rolled back (the incumbent stays), the rollback is recorded as a
   ``gate_regression`` hole, and the survivor pool is re-drawn from the
   next-best ranked genomes;
4. **breed** — survivors are mutated under the arena RNG into the next
   generation's population.

Every generation is checkpointed through
:class:`~repro.runtime.CheckpointStore` (population, detector weights,
RNG state, trajectory, holes), so ``--resume`` after a SIGKILL replays
the interrupted generation **bit-identically** — the report
(:data:`REPORT_NAME`) is a pure function of the trajectory and diffs
byte-equal against an uninterrupted run.  Per-genome crashes, diverged
retrains and corrupted checkpoints degrade to classified holes; only an
unusable spec/directory or a failed *initial* vaccination is fatal.

Exit-code contract (mirrors ``repro campaign``): 0 = clean, 1 =
completed with holes, 2 = fatal (raised as
:class:`~repro.runtime.errors.ArenaError` /
:class:`~repro.runtime.errors.CheckpointError` /
:class:`~repro.core.patching.ModelSchemaError` and mapped by the CLI).
"""

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.arena.gate import _holdout_stats, regression_gate
from repro.arena.genome import (
    genome_key, mutate_genome, sample_genome, seed_population,
)
from repro.arena.workers import evaluate_genome, validate_evaluation
from repro.attacks import ATTACKS_BY_NAME
from repro.core.patching import (
    detector_from_dict, detector_to_dict, save_detector,
    verify_corpus_compatible,
)
from repro.core.vaccination import vaccinate
from repro.data.dataset import Dataset, SampleRecord, build_dataset
from repro.ml.resilience import TrainingDivergedError, TrainingGuard
from repro.obs import metrics, obs_event
from repro.obs.context import current_run_id, record_lineage
from repro.runtime import (
    CHECKPOINT_CORRUPT, GATE_REGRESSION, TRAINING_DIVERGED, ArenaError,
    CheckpointStore, Task, TaskRunner, atomic_write_bytes,
)
from repro.workloads import WORKLOAD_BUILDERS, Workload

#: bumped when the arena ledger layout changes incompatibly
ARENA_SCHEMA = "repro.arena/1"

MANIFEST_NAME = "arena.json"
REPORT_NAME = "arena.md"
DETECTOR_NAME = "detector.json"
CHECKPOINT_DIR = "checkpoints"

#: category label for survivor windows folded into the training corpus
EVOLVED_CATEGORY = "arena-evolved"

_DEFAULT_ATTACKS = ("flush-reload", "meltdown")
_DEFAULT_WORKLOADS = ("stream", "sort")


@dataclass
class ArenaSpec:
    """Canonical description of one arms race (fingerprinted; the
    checkpoint context is bound to it, so ``--resume`` with a different
    spec is rejected instead of corrupting the lineage)."""

    generations: int = 3            # arms-race rounds after generation 0
    population: int = 9             # genomes per generation
    survivors: int = 3              # breeding pool size
    attacks: tuple = _DEFAULT_ATTACKS       # canonical-attack fold names
    workloads: tuple = _DEFAULT_WORKLOADS   # benign fold names
    scale: int = 1
    sample_period: int = 150
    train_seeds: tuple = (0,)
    eval_seeds: tuple = (1,)        # held-out: never trained on
    samples_per_class: int = 10
    gan_iterations: int = 40
    gan_hidden: tuple = (32, 32)
    epochs: int = 10
    detector_hidden: tuple = ()
    engineer_features: bool = False
    fp_budget: float = 0.02
    fn_budget: float = 0.05
    seed: int = 0

    def validate(self):
        if self.generations < 1:
            raise ArenaError("spec needs at least one generation")
        if not 1 <= self.survivors <= self.population:
            raise ArenaError(
                f"survivors ({self.survivors}) must be in "
                f"[1, population={self.population}]")
        if self.sample_period < 1:
            raise ArenaError("sample_period must be >= 1")
        for name in self.attacks:
            if name not in ATTACKS_BY_NAME:
                raise ArenaError(f"unknown attack {name!r}")
        for name in self.workloads:
            if name not in WORKLOAD_BUILDERS:
                raise ArenaError(f"unknown workload {name!r}")
        if set(self.train_seeds) & set(self.eval_seeds):
            raise ArenaError(
                "train_seeds and eval_seeds overlap: the regression "
                "gate needs a held-out corpus")
        return self

    def to_dict(self):
        return {
            "generations": self.generations,
            "population": self.population,
            "survivors": self.survivors,
            "attacks": list(self.attacks),
            "workloads": list(self.workloads),
            "scale": self.scale,
            "sample_period": self.sample_period,
            "train_seeds": list(self.train_seeds),
            "eval_seeds": list(self.eval_seeds),
            "samples_per_class": self.samples_per_class,
            "gan_iterations": self.gan_iterations,
            "gan_hidden": list(self.gan_hidden),
            "epochs": self.epochs,
            "detector_hidden": list(self.detector_hidden),
            "engineer_features": self.engineer_features,
            "fp_budget": self.fp_budget,
            "fn_budget": self.fn_budget,
            "seed": self.seed,
        }

    @property
    def fingerprint(self):
        blob = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class ArenaResult:
    """Outcome of one arena run."""

    spec: ArenaSpec
    trajectory: List[dict] = field(default_factory=list)
    holes: List[dict] = field(default_factory=list)
    detector: object = None
    directory: Optional[str] = None
    elapsed: float = 0.0

    @property
    def exit_code(self):
        """0 clean / 1 completed-with-holes (2 = fatal, raised)."""
        return 0 if not self.holes else 1

    @property
    def promotions(self):
        return sum(1 for e in self.trajectory
                   if e["generation"] > 0 and e["promoted"])

    @property
    def rollbacks(self):
        return sum(1 for h in self.holes if h["kind"] == GATE_REGRESSION)

    def holes_by_kind(self):
        counts = {}
        for hole in self.holes:
            counts[hole["kind"]] = counts.get(hole["kind"], 0) + 1
        return counts

    def summary(self):
        last = self.trajectory[-1] if self.trajectory else {}
        lines = [f"arena: {len(self.trajectory) - 1}/{self.spec.generations}"
                 f" generations, {self.promotions} promotions, "
                 f"{self.rollbacks} rollbacks ({self.elapsed:.1f}s)"]
        if last:
            inc = last.get("incumbent", {})
            lines.append(
                f"incumbent: fp={inc.get('fp_rate', 0.0):.4f} "
                f"fn={inc.get('fn_rate', 0.0):.4f} "
                f"auc={inc.get('auc', 0.0):.4f}")
        if self.holes:
            kinds = ", ".join(f"{k}={v}" for k, v
                              in sorted(self.holes_by_kind().items()))
            lines.append(f"holes: {len(self.holes)} ({kinds})")
            for hole in self.holes:
                lines.append(f"  [{hole['kind']:16s}] gen {hole['generation']}"
                             f" {hole['key']}: {hole['message']}")
        return "\n".join(lines)


# -- deterministic report + durable ledger ------------------------------------

def render_arena_report(spec, trajectory, holes):
    """The arms-race report as deterministic markdown.

    A pure function of the spec fingerprint, trajectory and holes — no
    run ids, timestamps or wall-clock — so an uninterrupted run and a
    crash-then-resume run of the same spec render **byte-identical**
    files (the resume smoke diffs them directly).
    """
    lines = [
        "# Arena report",
        "",
        f"spec `{spec.fingerprint[:12]}` | generations "
        f"{len(trajectory) - 1 if trajectory else 0}/{spec.generations} "
        f"| holes {len(holes)}",
        "",
        "| gen | evaluated | leaked | evasion mean | evasion max "
        "| gate | fp | fn | auc |",
        "|----:|----------:|-------:|-------------:|------------:"
        "|------|---:|---:|----:|",
    ]
    for entry in trajectory:
        inc = entry.get("incumbent", {})
        if entry["generation"] == 0:
            gate = "seed"
        elif entry["promoted"]:
            gate = "promoted"
        else:
            gate = "ROLLBACK"
        lines.append(
            f"| {entry['generation']} | {entry.get('evaluated', '-')} "
            f"| {entry.get('leaked', '-')} "
            f"| {entry.get('evasion_mean', 0.0):.4f} "
            f"| {entry.get('evasion_max', 0.0):.4f} "
            f"| {gate} | {inc.get('fp_rate', 0.0):.4f} "
            f"| {inc.get('fn_rate', 0.0):.4f} "
            f"| {inc.get('auc', 0.0):.4f} |")
    if holes:
        lines += ["", "## Holes", ""]
        for hole in holes:
            lines.append(f"- gen {hole['generation']} `{hole['key']}` "
                         f"[{hole['kind']}] {hole['message']}")
    lines.append("")
    return "\n".join(lines)


class _Ledger:
    """``arena.json`` + ``arena.md``, rewritten atomically after every
    generation so a SIGKILL at any instant leaves a consistent,
    resumable prefix on disk."""

    def __init__(self, directory, spec, guard_policy, parent_run):
        self.directory = directory
        self.spec = spec
        self.guard_policy = guard_policy
        self.parent_run = parent_run
        self.started = time.monotonic()
        self.manifest_path = os.path.join(directory, MANIFEST_NAME)
        self.report_path = os.path.join(directory, REPORT_NAME)

    def flush(self, trajectory, holes):
        elapsed = time.monotonic() - self.started
        atomic_write_bytes(
            self.report_path,
            render_arena_report(self.spec, trajectory, holes)
            .encode("utf-8"))
        by_kind = {}
        for hole in holes:
            by_kind[hole["kind"]] = by_kind.get(hole["kind"], 0) + 1
        manifest = {
            "schema": ARENA_SCHEMA,
            "run_id": current_run_id(),
            "parent_run": self.parent_run,
            "spec": self.spec.to_dict(),
            "spec_fingerprint": self.spec.fingerprint,
            "guard_policy": self.guard_policy,
            "counts": {
                "generations": max((e["generation"] for e in trajectory),
                                   default=0),
                "evaluated": sum(e.get("evaluated", 0) for e in trajectory),
                "leaked": sum(e.get("leaked", 0) for e in trajectory),
                "promotions": sum(1 for e in trajectory
                                  if e["generation"] > 0 and e["promoted"]),
                "rollbacks": by_kind.get(GATE_REGRESSION, 0),
                "holes": len(holes),
                "holes_by_kind": by_kind,
            },
            "trajectory": trajectory,
            "holes": holes,
            "elapsed_s": round(elapsed, 3),
            "exit_code": 1 if holes else 0,
        }
        atomic_write_bytes(self.manifest_path,
                           json.dumps(manifest, indent=1).encode("utf-8"))
        return elapsed


# -- corpora ------------------------------------------------------------------

def build_corpus(spec, seeds):
    """Deterministically rebuild a (train or held-out) labelled corpus
    from the spec: canonical attacks x seeds + benign kernels x seeds."""
    attacks = [ATTACKS_BY_NAME[name](seed=seed)
               for name in spec.attacks for seed in seeds]
    workloads = [Workload(name, WORKLOAD_BUILDERS[name],
                          scale=spec.scale, seed=seed)
                 for name in spec.workloads for seed in seeds]
    return build_dataset(attacks, workloads,
                         sample_period=spec.sample_period)


def _survivor_records(survivors, evaluations, sample_period):
    """Survivor windows as labelled records for the re-vaccination
    corpus (the ``arena-evolved`` attack class)."""
    records = []
    for index, genome in survivors:
        evaluation = evaluations[index]
        for i, deltas in enumerate(evaluation["deltas"]):
            records.append(SampleRecord(
                deltas=list(deltas),
                label=1,
                category=EVOLVED_CATEGORY,
                phase=0,
                source=f"arena:{evaluation['key']}",
                commit_index=i * sample_period,
            ))
    return records


def _evasion(incumbent, evaluation):
    """Fraction of a genome's windows the incumbent misses.  Non-finite
    scores count as *flagged* (fail-secure: a poisoned detector scores
    as catching everything, so evolution gets no reward for breaking
    the scorer)."""
    scores = incumbent.score_batch(
        np.asarray(evaluation["deltas"], dtype=float))
    flagged = np.count_nonzero(
        (scores >= incumbent.threshold) | ~np.isfinite(scores))
    return 1.0 - flagged / len(scores)


def _detector_fingerprint(detector):
    if detector is None:
        return ""
    blob = json.dumps(detector_to_dict(detector), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# -- the arms race ------------------------------------------------------------

def run_arena(spec, directory, *, processes=None, retries=1,
              task_timeout=None, resume=False, chaos=None,
              guard_policy="rollback", initial_detector=None,
              eval_corpus=None, progress=None):
    """Run (or resume) the arms race; returns :class:`ArenaResult`.

    Never raises for per-genome or per-generation failures — they
    become holes.  Raises only for fatal, whole-run problems:
    :class:`~repro.runtime.errors.ArenaError` (bad spec, failed initial
    vaccination), :class:`~repro.runtime.errors.CheckpointError`
    (resume context mismatch) and
    :class:`~repro.core.patching.ModelSchemaError` (detector envelope
    vs corpus layout mismatch).
    """
    spec.validate()
    os.makedirs(directory, exist_ok=True)
    reg = metrics()

    store = CheckpointStore(os.path.join(directory, CHECKPOINT_DIR))
    context = {
        "spec_fingerprint": spec.fingerprint,
        "guard_policy": guard_policy,
        "initial_detector": _detector_fingerprint(initial_detector),
    }
    store.open(context, resume=resume)

    obs_event("arena.started", generations=spec.generations,
              population=spec.population, resume=bool(resume),
              spec_fingerprint=spec.fingerprint[:12])

    train_ds = build_corpus(spec, spec.train_seeds)
    eval_ds = eval_corpus if eval_corpus is not None \
        else build_corpus(spec, spec.eval_seeds)

    rng = np.random.default_rng(spec.seed)
    trajectory, holes = [], []
    population, incumbent = None, None
    start_gen, parent_run = 1, None

    # -- resume: restore the latest valid generation checkpoint ---------------
    if resume:
        claimed = {g: f"gen-{g}" for g in range(spec.generations + 1)
                   if store.has(f"gen-{g}")}
        valid = set(store.valid_keys())
        restore_gen = None
        for g in sorted(claimed):
            if claimed[g] in valid:
                restore_gen = g
            else:
                # the shard is gone or fails its checksum: classify the
                # hole and re-run the generation (self-healing)
                holes.append({"generation": g, "kind": CHECKPOINT_CORRUPT,
                              "key": claimed[g],
                              "message": "generation checkpoint missing or "
                                         "corrupt; re-running"})
                reg.inc("arena.checkpoint.corrupt")
                reg.inc("arena.genomes.holes")
                obs_event("arena.hole", level="error", generation=g,
                          kind=CHECKPOINT_CORRUPT, key=claimed[g])
        if restore_gen is not None:
            payload = store.get(f"gen-{restore_gen}")
            population = payload["population"]
            incumbent = detector_from_dict(payload["detector"])
            rng.bit_generator.state = payload["rng_state"]
            trajectory = payload["trajectory"]
            holes = payload["holes"] + holes
            start_gen = restore_gen + 1
            parent_run = payload.get("run")
            if parent_run:
                record_lineage(parent_run=parent_run)
            obs_event("arena.resumed", generation=restore_gen,
                      parent_run=parent_run)

    ledger = _Ledger(directory, spec, guard_policy, parent_run)

    # -- generation 0: seed population + initial vaccination ------------------
    if incumbent is None:
        population = seed_population(spec.population, rng)
        if initial_detector is not None:
            incumbent = initial_detector
        else:
            try:
                incumbent = _revaccinate(spec, train_ds, [], spec.seed,
                                         guard_policy, None)
            except TrainingDivergedError as exc:
                raise ArenaError(
                    f"initial vaccination diverged ({exc.kind} at step "
                    f"{exc.step}); no incumbent detector to ratchet "
                    f"from") from exc
        verify_corpus_compatible(incumbent, eval_ds,
                                 detector_origin="arena incumbent",
                                 corpus_origin="held-out corpus")
        trajectory.append({
            "generation": 0,
            "promoted": True,
            "incumbent": _holdout_stats(incumbent, eval_ds),
        })
        _checkpoint(store, 0, population, incumbent, rng, trajectory,
                    holes, chaos)
    else:
        verify_corpus_compatible(incumbent, eval_ds,
                                 detector_origin="arena incumbent",
                                 corpus_origin="held-out corpus")
    ledger.flush(trajectory, holes)

    # -- the arms race ---------------------------------------------------------
    for g in range(start_gen, spec.generations + 1):
        gen_started = time.monotonic()
        if chaos is not None:
            chaos.maybe_kill(g, "evaluate")
        gen_seed = (spec.seed * 1_000_003 + g) % (2 ** 31)

        evaluations, gen_holes = _evaluate_population(
            spec, population, g, processes, retries, task_timeout,
            chaos, reg)
        holes.extend(gen_holes)

        ranked = []
        for index, evaluation in sorted(evaluations.items()):
            if evaluation["leaked"]:
                evasion = _evasion(incumbent, evaluation)
                ranked.append((evasion, evaluation["key"], index))
        ranked.sort(key=lambda r: (-r[0], r[1]))
        reg.inc("arena.genomes.leaked", len(ranked))
        evasions = [r[0] for r in ranked]
        evasion_mean = float(np.mean(evasions)) if evasions else 0.0
        evasion_max = float(max(evasions)) if evasions else 0.0
        reg.set_gauge("arena.evasion.mean", round(evasion_mean, 4))
        reg.set_gauge("arena.evasion.max", round(evasion_max, 4))

        survivors = [(index, population[index])
                     for _, _, index in ranked[:spec.survivors]]

        # -- re-vaccinate against the survivors -------------------------------
        candidate, verdict, promoted = None, None, False
        try:
            candidate = _revaccinate(
                spec, train_ds,
                _survivor_records(survivors, evaluations,
                                  spec.sample_period),
                gen_seed, guard_policy,
                chaos.training_chaos(g) if chaos is not None else None)
        except TrainingDivergedError as exc:
            holes.append({"generation": g, "kind": TRAINING_DIVERGED,
                          "key": f"gen-{g}",
                          "message": f"re-vaccination diverged "
                                     f"({exc.kind} at step {exc.step}); "
                                     f"incumbent retained"})
            reg.inc("arena.genomes.holes")
            obs_event("arena.hole", level="error", generation=g,
                      kind=TRAINING_DIVERGED, message=str(exc))

        # -- regression gate ---------------------------------------------------
        if candidate is not None:
            if chaos is not None:
                chaos.sabotage_candidate(g, candidate)
            verdict = regression_gate(candidate, incumbent, eval_ds,
                                      fp_budget=spec.fp_budget,
                                      fn_budget=spec.fn_budget)
            obs_event("arena.gate", generation=g,
                      promoted=verdict.promoted,
                      reasons=list(verdict.reasons))
            if verdict.promoted:
                incumbent = candidate
                promoted = True
                reg.inc("arena.gate.promotions")
            else:
                reg.inc("arena.gate.rollbacks")
                holes.append({"generation": g, "kind": GATE_REGRESSION,
                              "key": f"gen-{g}",
                              "message": "; ".join(verdict.reasons)})
                obs_event("arena.hole", level="error", generation=g,
                          kind=GATE_REGRESSION,
                          message="; ".join(verdict.reasons))
                # re-draw the breeding pool: the survivors that drove
                # the regressing retrain are discarded for the
                # next-best ranked genomes
                redraw = ranked[spec.survivors:spec.survivors * 2]
                survivors = [(index, population[index])
                             for _, _, index in redraw]

        entry = {
            "generation": g,
            "evaluated": len(evaluations),
            "leaked": len(ranked),
            "holes": len(gen_holes),
            "evasion_mean": round(evasion_mean, 4),
            "evasion_max": round(evasion_max, 4),
            "promoted": promoted,
            "gate": verdict.to_dict() if verdict is not None else None,
            "incumbent": _holdout_stats(incumbent, eval_ds),
            "survivors": [genome_key(genome) for _, genome in survivors],
            "seconds": round(time.monotonic() - gen_started, 3),
        }
        trajectory.append(entry)
        reg.inc("arena.generations")
        reg.observe("arena.generation.seconds",
                    time.monotonic() - gen_started)
        obs_event("arena.generation", generation=g,
                  evaluated=entry["evaluated"], leaked=entry["leaked"],
                  evasion_mean=entry["evasion_mean"],
                  promoted=promoted)

        # -- breed the next generation ----------------------------------------
        population = _breed([genome for _, genome in survivors],
                            spec.population, rng)
        _checkpoint(store, g, population, incumbent, rng, trajectory,
                    holes, chaos)
        ledger.flush(trajectory, holes)
        if progress is not None:
            progress(entry)

    save_detector(incumbent, os.path.join(directory, DETECTOR_NAME))
    elapsed = ledger.flush(trajectory, holes)
    result = ArenaResult(spec=spec, trajectory=trajectory, holes=holes,
                         detector=incumbent, directory=directory,
                         elapsed=elapsed)
    obs_event("arena.finished",
              level="error" if result.holes else "info",
              generations=len(trajectory) - 1,
              promotions=result.promotions, rollbacks=result.rollbacks,
              holes=len(holes), exit_code=result.exit_code)
    return result


# -- helpers ------------------------------------------------------------------

def _evaluate_population(spec, population, generation, processes, retries,
                         task_timeout, chaos, reg):
    """Fan the generation's genomes out over isolated workers; crashes,
    hangs and divergent traces become classified holes."""
    tasks = []
    for index, genome in enumerate(population):
        kill = chaos.kill_attempts(generation, index) \
            if chaos is not None else 0
        tasks.append(Task(
            key=f"g{generation}:{index}:{genome_key(genome)}",
            payload={"genome": genome,
                     "sample_period": spec.sample_period,
                     "kill_attempts": kill}))
    if processes is None:
        processes = max(1, min(len(tasks) or 1, (os.cpu_count() or 2)))
    runner = TaskRunner(evaluate_genome, processes=processes,
                        retries=retries, timeout=task_timeout,
                        validator=validate_evaluation)
    evaluations, gen_holes = {}, []
    for outcome in runner.run(tasks):
        index = int(outcome.key.split(":")[1])
        if outcome.ok:
            evaluations[index] = outcome.value
            reg.inc("arena.genomes.evaluated")
        else:
            gen_holes.append({"generation": generation,
                              "kind": outcome.kind, "key": outcome.key,
                              "message": outcome.message})
            reg.inc("arena.genomes.holes")
            obs_event("arena.hole", level="error", generation=generation,
                      kind=outcome.kind, key=outcome.key,
                      message=outcome.message)
    return evaluations, gen_holes


def _revaccinate(spec, train_ds, extra_records, seed, guard_policy, chaos):
    """One vaccination round over the base corpus plus the survivors'
    evolved windows, under a fresh :class:`TrainingGuard`."""
    corpus = Dataset(records=list(train_ds.records) + list(extra_records),
                     sample_period=train_ds.sample_period)
    guard = TrainingGuard(policy=guard_policy)
    result = vaccinate(
        corpus,
        samples_per_class=spec.samples_per_class,
        gan_iterations=spec.gan_iterations,
        gan_hidden=tuple(spec.gan_hidden),
        engineer_features=spec.engineer_features,
        detector_hidden=tuple(spec.detector_hidden),
        epochs=spec.epochs,
        seed=seed,
        guard=guard,
        chaos=chaos,
    )
    return result.detector


def _breed(survivor_genomes, count, rng):
    """Next generation: survivors kept verbatim (elitism), the rest
    mutated offspring — or fresh samples when nothing survived."""
    population = [dict(genome) for genome in survivor_genomes][:count]
    while len(population) < count:
        if survivor_genomes:
            parent = survivor_genomes[
                int(rng.integers(0, len(survivor_genomes)))]
            population.append(mutate_genome(parent, rng))
        else:
            population.append(sample_genome(rng))
    return population


def _checkpoint(store, generation, population, incumbent, rng, trajectory,
                holes, chaos):
    """Persist the full generation state (the resume fixed point):
    population, detector weights, RNG state, trajectory and holes."""
    store.put(f"gen-{generation}", {
        "generation": generation,
        "population": population,
        "detector": detector_to_dict(incumbent),
        "rng_state": rng.bit_generator.state,
        "trajectory": trajectory,
        "holes": holes,
        "run": current_run_id(),
    })
    if chaos is not None:
        chaos.mangle_checkpoint(
            generation,
            os.path.join(store.directory,
                         f"gen-{generation}.shard.json"))
