"""Attack genomes: the heritable representation the arms race evolves.

A genome is a small, canonical JSON dict describing one fuzzed,
evasion-wrapped attack — the same mutation space the static fuzzers
(:mod:`repro.attacks.fuzzing`: Transynther / TRRespass / Osiris style)
draw from, but made *explicit* so the arena can persist a population in
a generation checkpoint, fingerprint it, mutate it under a checkpointed
RNG, and rebuild the exact attack instance on resume.

Everything here is a pure function of (genome, seed): building the same
genome twice yields bit-identical programs (the evasion wrapper derives
its dilution RNG from the genome seed), and sampling/mutation draw only
from the ``numpy.random.Generator`` passed in — which the arena loop
checkpoints, so a resumed run breeds the exact same offspring.
"""

import hashlib
import json

from repro.attacks.base import default_secret_bits
from repro.attacks.cache_attacks import FlushFlush, FlushReload, PrimeProbe
from repro.attacks.evasion import EvasiveAttack
from repro.attacks.mds import (
    Fallout, LVI, MedusaCacheIndexing, MedusaShadowRepMov, MedusaUnaligned,
)
from repro.attacks.meltdown import Meltdown
from repro.attacks.other import RDRNDCovert
from repro.attacks.rowhammer import DRAMA, Rowhammer, TRRespass, _VICTIM_ROW

#: the three mutation tools, mirroring ``attacks/fuzzing.py``
TRANSYNTHER = "transynther"
TRRESPASS = "trrespass"
OSIRIS = "osiris"

TOOLS = (TRANSYNTHER, TRRESPASS, OSIRIS)

#: per-tool attack families (name -> class), sorted for stable draws
FAMILIES = {
    TRANSYNTHER: {cls.__name__: cls for cls in (
        Meltdown, Fallout, LVI, MedusaCacheIndexing, MedusaUnaligned,
        MedusaShadowRepMov)},
    OSIRIS: {cls.__name__: cls for cls in (
        FlushReload, FlushFlush, PrimeProbe, DRAMA, RDRNDCovert)},
}

_SECRET_N = {TRANSYNTHER: (3, 4, 5), OSIRIS: (3, 4)}
_SIDES = (2, 3, 4, 6)
_OFFSET_POOL = (-3, -2, -1, 1, 2, 3)


def _round4(x):
    """Rates are rounded to 4 decimals so a genome's canonical JSON —
    and therefore its key and checkpoint bytes — is stable."""
    return float(round(float(x), 4))


def canonical_json(genome):
    return json.dumps(genome, sort_keys=True, separators=(",", ":"))


def genome_key(genome):
    """Short content-addressed identifier (stable across runs)."""
    return hashlib.sha256(canonical_json(genome).encode()).hexdigest()[:12]


def sample_genome(rng, tool=None):
    """Draw one genome from the mutation space using ``rng`` only."""
    if tool is None:
        tool = TOOLS[int(rng.integers(0, len(TOOLS)))]
    genome = {
        "tool": tool,
        "seed": int(rng.integers(1, 1 << 16)),
        "nop_rate": _round4(rng.uniform(0.0, 0.5)),
        "prefetch_rate": _round4(rng.uniform(0.0, 0.25)),
        "camouflage_actors": int(rng.integers(0, 3)),
    }
    if tool == TRRESPASS:
        sides = _SIDES[int(rng.integers(0, len(_SIDES)))]
        offsets = rng.choice(_OFFSET_POOL, size=sides, replace=False)
        genome["sides"] = int(sides)
        genome["offsets"] = sorted(int(o) for o in offsets)
        genome["iterations"] = int(rng.integers(340, 520))
    else:
        families = sorted(FAMILIES[tool])
        genome["family"] = families[int(rng.integers(0, len(families)))]
        choices = _SECRET_N[tool]
        genome["secret_n"] = int(choices[int(rng.integers(0, len(choices)))])
    return genome


def mutate_genome(genome, rng):
    """One mutation step: jitter the evasion rates, reseed, or change the
    structural knobs (family / aggressor pattern).  Returns a new dict;
    the parent is never modified."""
    child = dict(genome)
    roll = rng.uniform(0.0, 1.0)
    if roll < 0.5:
        # bandwidth-evasion jitter: nudge the dilution rates
        child["nop_rate"] = _round4(
            min(0.5, max(0.0, child["nop_rate"] + rng.uniform(-0.1, 0.1))))
        child["prefetch_rate"] = _round4(
            min(0.25, max(0.0,
                          child["prefetch_rate"] + rng.uniform(-0.05, 0.05))))
        child["camouflage_actors"] = int(rng.integers(0, 3))
    elif roll < 0.8:
        # reseed: new gadget composition / secret within the same family
        child["seed"] = int(rng.integers(1, 1 << 16))
    else:
        # structural mutation: re-draw the tool-specific knobs
        fresh = sample_genome(rng, tool=child["tool"])
        for key in ("family", "secret_n", "sides", "offsets", "iterations"):
            if key in fresh:
                child[key] = fresh[key]
    return child


def seed_population(count, rng):
    """The generation-0 population: tools round-robined so every fuzzer
    style is represented, parameters drawn from ``rng``."""
    return [sample_genome(rng, tool=TOOLS[i % len(TOOLS)])
            for i in range(count)]


def build_attack(genome):
    """Instantiate the evasion-wrapped attack a genome describes."""
    tool = genome["tool"]
    seed = genome["seed"]
    if tool == TRRESPASS:
        cls = TRRespass if genome["sides"] > 2 else Rowhammer
        base = cls(seed=seed)
        base.aggressor_rows = tuple(sorted(_VICTIM_ROW + o
                                           for o in genome["offsets"]))
        base.iterations = genome["iterations"]
    else:
        cls = FAMILIES[tool][genome["family"]]
        bits = default_secret_bits(seed, n=genome["secret_n"])
        base = cls(secret_bits=bits, seed=seed)
    attack = EvasiveAttack(
        base,
        nop_rate=genome["nop_rate"],
        prefetch_rate=genome["prefetch_rate"],
        camouflage_actors=genome["camouflage_actors"],
        seed=seed,
    )
    attack.name = f"arena:{tool}:{genome_key(genome)}"
    return attack
