"""Closed-loop adversarial arms race (``repro arena``).

A generational red-team harness: the fuzzer mutation space
(:mod:`repro.arena.genome`) evolves an attack population against the
*current* detector (fitness = evasion on fresh simulator traces),
survivors feed an AM-GAN re-vaccination round, and every candidate
detector must pass a held-out regression gate
(:mod:`repro.arena.gate`) before promotion — failing candidates roll
back.  Generations checkpoint through the runtime's
:class:`~repro.runtime.CheckpointStore`, so ``--resume`` after a
SIGKILL replays bit-identically (:mod:`repro.arena.loop`); chaos
faults degrade to classified holes (:mod:`repro.arena.smoke` drills
the whole contract in CI).
"""

from repro.arena.gate import GateVerdict, regression_gate
from repro.arena.genome import (
    build_attack, genome_key, mutate_genome, sample_genome,
    seed_population,
)
from repro.arena.loop import (
    ArenaResult, ArenaSpec, build_corpus, render_arena_report, run_arena,
)
from repro.arena.smoke import run_smoke
from repro.arena.workers import evaluate_genome, validate_evaluation

__all__ = [
    "ArenaResult", "ArenaSpec", "GateVerdict",
    "build_attack", "build_corpus", "evaluate_genome", "genome_key",
    "mutate_genome", "regression_gate", "render_arena_report",
    "run_arena", "run_smoke", "sample_genome", "seed_population",
    "validate_evaluation",
]
