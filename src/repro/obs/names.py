"""The canonical metric catalog.

Every metric name the instrumentation may emit is declared here, grouped
by layer, with its instrument kind and a one-line meaning.  This is the
contract between code and documentation:

* instrumentation sites take names from this module (or match it —
  checked by ``tests/obs/test_docs_and_catalog.py``);
* every metric name mentioned in ``docs/observability.md`` must exist
  here, so the docs cannot drift from the code.

Names are dotted ``layer.subsystem.metric`` strings.  Stage timers
produced by the CLI are the one parameterized family:
``stage.<command>.<stage>`` — enumerated here explicitly so the docs
check stays exact.
"""

#: layer -> {metric name: (kind, description)}
CATALOG = {
    "sim": {
        "sim.runs": ("counter", "simulations completed (Machine.run calls)"),
        "sim.run.seconds": ("timer", "wall-clock per simulation run"),
        "sim.cycles": ("counter", "total simulated cycles across runs"),
        "sim.committed": ("counter", "total committed instructions"),
        "sim.detections": ("counter", "detector-hook positive windows"),
        "sim.sampler.windows": ("counter", "HPC sampling windows emitted"),
        "sim.sampler.partial_windows":
            ("counter", "partial end-of-run windows emitted by flush"),
        "sim.memo.hits":
            ("counter", "runs replayed from the trace-memo table"),
        "sim.memo.misses":
            ("counter", "memo-eligible runs simulated and recorded"),
        "sim.memo.ineligible":
            ("counter", "runs that bypassed memoization (conservative "
                        "fingerprint refused)"),
        "sim.memo.entries": ("gauge", "records live in the memo table"),
        "sim.memo.replayed_windows":
            ("counter", "sampling windows replayed from memo records"),
        "sim.decode.block_hits":
            ("counter", "basic blocks interned from the decode cache"),
        "sim.decode.block_misses":
            ("counter", "basic blocks cracked and cached on first sight"),
        "sim.smt.runs": ("counter", "SMT co-tenant runs (SMTMachine.run)"),
    },
    "runtime": {
        "runner.tasks.queued": ("counter", "tasks submitted to TaskRunner"),
        "runner.tasks.started": ("counter", "worker launches (incl. retries)"),
        "runner.tasks.finished": ("counter", "tasks completed and validated"),
        "runner.tasks.retried": ("counter", "failed attempts re-queued"),
        "runner.tasks.quarantined":
            ("counter", "tasks failed permanently after retries"),
        "runner.failures.crash": ("counter", "attempts lost to crashes"),
        "runner.failures.timeout": ("counter", "attempts lost to timeouts"),
        "runner.failures.divergent":
            ("counter", "attempts rejected by the validator"),
        "runner.task.seconds": ("timer", "per-task wall clock (queue to "
                                         "resolution, across retries)"),
    },
    "data": {
        "data.build.seconds": ("timer", "resilient corpus build wall clock"),
        "data.sources.completed": ("counter", "sources simulated this build"),
        "data.sources.restored":
            ("counter", "sources restored from checkpoint shards"),
        "data.records": ("counter", "sample records added to the dataset"),
        "data.coverage": ("gauge", "fraction of requested sources present"),
    },
    "ml": {
        "ml.train.batches": ("counter", "optimizer steps taken"),
        "ml.train.batch.seconds": ("timer", "wall-clock per train_batch"),
        "ml.train.loss": ("gauge", "most recent batch loss"),
        "guard.trips": ("counter", "training anomalies detected, any kind"),
        "guard.trips.nan":
            ("counter", "trips: non-finite loss or parameters"),
        "guard.trips.grad_spike":
            ("counter", "trips: gradient magnitude explosion"),
        "guard.trips.loss_divergence":
            ("counter", "trips: loss detached from its EMA"),
        "guard.rollbacks":
            ("counter", "snapshot rollbacks taken by the guard"),
        "guard.clips":
            ("counter", "in-place parameter sanitizations (clip policy)"),
        "guard.checkpoints.written":
            ("counter", "durable training checkpoints persisted"),
        "guard.checkpoints.restored":
            ("counter", "training states restored from checkpoint"),
    },
    "core": {
        "amgan.train.seconds": ("timer", "AM-GAN adversarial training"),
        "amgan.iterations": ("counter", "adversarial rounds completed"),
        "amgan.loss.disc_real": ("gauge", "discriminator loss, real pairs"),
        "amgan.loss.disc_mismatch":
            ("gauge", "discriminator loss, mismatched pairs"),
        "amgan.loss.disc_fake": ("gauge", "discriminator loss, generated"),
        "amgan.style_loss": ("gauge", "mean Gram style loss, last probe"),
        "vaccinate.gan.seconds": ("timer", "pipeline stage: GAN training"),
        "vaccinate.engineer.seconds":
            ("timer", "pipeline stage: security-HPC mining"),
        "vaccinate.augment.seconds":
            ("timer", "pipeline stage: harvest + adversarial hardening"),
        "vaccinate.fit.seconds":
            ("timer", "pipeline stage: detector training"),
        "vaccinate.calibrate.seconds":
            ("timer", "pipeline stage: threshold calibration"),
        "adaptive.flags": ("counter", "detector positives during runs"),
        "adaptive.secure.entries": ("counter", "secure-mode activations"),
        "adaptive.secure.exits": ("counter", "secure-mode deactivations"),
        "adaptive.windows.secure":
            ("counter", "sampling windows spent in secure mode"),
        "adaptive.windows.total":
            ("counter", "sampling windows observed by the controller"),
        "adaptive.fail_secure.latches":
            ("counter", "watchdog latches into always-secure mode"),
        "adaptive.detector.errors":
            ("counter", "detector faults seen by the health watchdog"),
    },
    "campaign": {
        "campaign.cells.total":
            ("gauge", "cells in the expanded campaign matrix"),
        "campaign.cells.completed":
            ("counter", "cells executed and durably cached this run"),
        "campaign.cells.cache_hits":
            ("counter", "cells replayed from verified cache entries"),
        "campaign.cells.holes":
            ("counter", "cells permanently failed (reported as holes)"),
        "campaign.cache.corrupt":
            ("counter", "cache entries quarantined after failed "
                        "verification"),
        "campaign.cell.seconds":
            ("timer", "per-cell wall clock (queue to resolution, "
                      "across retries)"),
    },
    "serve": {
        "serve.windows.ingested":
            ("counter", "windows accepted into the serving queue"),
        "serve.windows.scored":
            ("counter", "windows scored through the batched detector"),
        "serve.windows.shed":
            ("counter", "windows dropped by backpressure (forced secure)"),
        "serve.batches": ("counter", "matrix-matrix score_batch calls"),
        "serve.batch.seconds": ("timer", "wall-clock per scored batch"),
        "serve.batch.max_windows":
            ("gauge", "largest batch scored this run"),
        "serve.queue.depth": ("gauge", "queued windows after the last "
                                       "batch was formed"),
        "serve.queue.peak": ("gauge", "high-water mark of queued windows"),
        "serve.latency.p50_ms":
            ("gauge", "median enqueue-to-verdict latency"),
        "serve.latency.p95_ms":
            ("gauge", "95th-percentile enqueue-to-verdict latency"),
        "serve.latency.p99_ms":
            ("gauge", "99th-percentile enqueue-to-verdict latency"),
        "serve.tenants": ("gauge", "tenant streams seen this run"),
        "serve.tenants.latched":
            ("counter", "tenants latched into always-secure mode"),
        "serve.detector.faults":
            ("counter", "detector exceptions or non-finite scores "
                        "attributed to a tenant window"),
    },
    "arena": {
        "arena.generations":
            ("counter", "arms-race generations completed"),
        "arena.genomes.evaluated":
            ("counter", "genome evaluations completed in workers"),
        "arena.genomes.leaked":
            ("counter", "evaluated genomes whose channel actually "
                        "leaked (eligible survivors)"),
        "arena.genomes.holes":
            ("counter", "arena holes of any kind (crashed/diverged "
                        "evaluations, diverged retrains, gate "
                        "rollbacks, corrupt checkpoints)"),
        "arena.evasion.mean":
            ("gauge", "mean evasion rate of leaking genomes, last "
                      "generation"),
        "arena.evasion.max":
            ("gauge", "best evasion rate of leaking genomes, last "
                      "generation"),
        "arena.gate.promotions":
            ("counter", "candidate detectors promoted by the "
                        "regression gate"),
        "arena.gate.rollbacks":
            ("counter", "candidate detectors rolled back by the "
                        "regression gate"),
        "arena.checkpoint.corrupt":
            ("counter", "generation checkpoints rejected on resume "
                        "(missing shard or checksum mismatch)"),
        "arena.generation.seconds":
            ("timer", "wall-clock per arms-race generation"),
    },
    "cli": {
        "stage.arena.run": ("timer", "arena: the arms race "
                                     "(or the --smoke drill)"),
        "stage.campaign.run": ("timer", "campaign: matrix fan-out "
                                        "(or the --smoke check)"),
        "stage.collect.build": ("timer", "collect: corpus simulation"),
        "stage.collect.save": ("timer", "collect: dataset serialization"),
        "stage.train.load": ("timer", "train: corpus load"),
        "stage.train.vaccinate": ("timer", "train: vaccination pipeline"),
        "stage.train.evaluate": ("timer", "train: detector evaluation"),
        "stage.train.save": ("timer", "train: detector serialization"),
        "stage.report.load": ("timer", "report: corpus + detector load"),
        "stage.report.render": ("timer", "report: markdown rendering"),
        "stage.explain.load": ("timer", "explain: artifact load"),
        "stage.explain.weights": ("timer", "explain: hyperplane report"),
        "stage.explain.windows": ("timer", "explain: window explanations"),
        "stage.adaptive.load": ("timer", "adaptive: saved detector load"),
        "stage.adaptive.train": ("timer", "adaptive: corpus + vaccination"),
        "stage.adaptive.run": ("timer", "adaptive: gated attack runs"),
        "stage.serve.load": ("timer", "serve: detector + stream setup"),
        "stage.serve.run": ("timer", "serve: the streaming drive loop"),
        "stage.serve.report": ("timer", "serve: report serialization"),
    },
}

#: every known metric name -> (kind, description)
ALL_METRICS = {name: meta for layer in CATALOG.values()
               for name, meta in layer.items()}

#: event names the structured log may emit (checked against docs too)
EVENTS = {
    "cli.start": "command dispatch (command, argv)",
    "cli.end": "command completion (status, exit_code, duration)",
    "sim.run": "one simulation finished (program, cycles, ipc, halt)",
    "task.started": "worker launched (key, attempt)",
    "task.finished": "task completed (key, attempts, elapsed_s)",
    "task.retry": "failed attempt re-queued (key, kind, delay_s)",
    "task.quarantined": "task failed permanently (key, kind, message)",
    "amgan.round": "style-loss probe (iteration, style_loss)",
    "vaccinate.stage": "vaccination stage boundary (stage)",
    "vaccinate.resumed":
        "training resumed from checkpoint (iteration, parent_run)",
    "guard.trip": "training anomaly detected (stage, step, kind, action)",
    "guard.rollback": "training rolled back to snapshot (step, to_step)",
    "guard.checkpoint": "training checkpoint written (stage, iteration)",
    "guard.restore": "training checkpoint restored (stage, iteration)",
    "adaptive.secure_enter": "secure mode enabled (commit_index, mode)",
    "adaptive.secure_exit": "secure mode disabled (commit_index)",
    "adaptive.fail_secure":
        "watchdog latched always-secure mode (reason, detail)",
    "manifest.written": "run manifest persisted (path)",
    "campaign.started":
        "campaign fan-out begun (cells, resume, spec_fingerprint)",
    "campaign.cell": "cell resolved ok (key, state, cache_hit)",
    "campaign.hole": "cell quarantined as a hole (key, kind, message)",
    "campaign.cache.quarantined":
        "corrupt cache entry moved to quarantine (key, fingerprint, "
        "reason)",
    "campaign.finished":
        "campaign completed (completed, holes, cache_hits, exit_code)",
    "arena.started":
        "arms race begun (generations, population, resume, "
        "spec_fingerprint)",
    "arena.generation":
        "one generation resolved (generation, evaluated, leaked, "
        "evasion_mean, promoted)",
    "arena.gate":
        "regression-gate verdict (generation, promoted, reasons)",
    "arena.hole":
        "arena failure quarantined as a hole (generation, kind, key, "
        "message)",
    "arena.resumed":
        "arms race resumed from a generation checkpoint (generation, "
        "parent_run)",
    "arena.finished":
        "arms race completed (generations, promotions, rollbacks, "
        "holes, exit_code)",
    "serve.started":
        "streaming service begun (tenants, duration, batch_window, "
        "queue_limit)",
    "serve.shed":
        "backpressure drop: queued windows forced secure (tenant, "
        "commit_index, depth)",
    "serve.tenant_latched":
        "tenant latched always-secure (tenant, reason)",
    "serve.detector_fault":
        "detector fault attributed to a window (tenant, kind)",
    "serve.finished":
        "streaming service completed (ingested, scored, shed, latched)",
}


def is_known_metric(name):
    """Whether ``name`` is in the canonical catalog."""
    return name in ALL_METRICS
