"""``repro.obs`` — dependency-free observability for the EVAX pipeline.

Three pillars, documented in ``docs/observability.md``:

* **structured logs** (:mod:`~repro.obs.log`) — JSONL events with a
  level threshold and per-run context (run id, seed, config
  fingerprint); disabled until a sink is configured, so hot paths pay
  a single ``None`` check.
* **metrics** (:mod:`~repro.obs.metrics`) — a process-global registry
  of counters / gauges / timers with a ``time_block`` context manager;
  the canonical name catalog lives in :mod:`~repro.obs.names`.
* **run manifests** (:mod:`~repro.obs.manifest`,
  :mod:`~repro.obs.context`) — one atomic JSON summary per CLI command
  (stage wall-clock, metric snapshot, failure taxonomy), written on
  success *and* failure.
"""

from repro.obs.log import EventLog, get_log, obs_event, read_events
from repro.obs.manifest import (
    MANIFEST_SCHEMA, build_manifest, config_fingerprint,
    default_manifest_path, read_manifest, write_manifest,
)
from repro.obs.metrics import (
    Counter, Gauge, MetricsRegistry, Timer, metrics, time_block,
)
from repro.obs.names import ALL_METRICS, CATALOG, EVENTS, is_known_metric

__all__ = [
    "EventLog", "get_log", "obs_event", "read_events",
    "MANIFEST_SCHEMA", "build_manifest", "config_fingerprint",
    "default_manifest_path", "read_manifest", "write_manifest",
    "Counter", "Gauge", "MetricsRegistry", "Timer", "metrics",
    "time_block",
    "ALL_METRICS", "CATALOG", "EVENTS", "is_known_metric",
]
