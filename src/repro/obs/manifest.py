"""Run manifests: one atomic JSON summary per CLI command.

A manifest is the durable, machine-readable record of what a run did —
wall-clock per stage, metric snapshots, and how it ended (including the
failure taxonomy when sources were quarantined), joined to the JSONL
event log by run id.  Future performance PRs cite these as before/after
evidence; ``docs/observability.md`` documents the format and a worked
"find the slow stage" example.

Manifests are written with the same temp-file + ``os.replace`` discipline
as every other durable artifact (:mod:`repro.runtime.atomic`), and are
written on *failure paths too* — a run that died still leaves a manifest
saying how far it got and why it stopped.
"""

import hashlib
import json
import platform
import sys

#: bumped when the manifest layout changes incompatibly
MANIFEST_SCHEMA = "repro.run-manifest/1"

#: per-command anchors for the default manifest path: the first of these
#: argparse attributes that is set names the artifact the manifest sits
#: next to, as ``<anchor>.<command>-manifest.json``
_MANIFEST_ANCHORS = {
    "arena": ("dir",),
    "collect": ("out",),
    "train": ("out", "corpus"),
    "report": ("out", "corpus"),
    "explain": ("detector",),
    "campaign": ("dir",),
    "serve": ("out",),
}


def config_fingerprint(options):
    """Deterministic SHA-256 over a run's effective configuration.

    ``options`` is any JSON-able mapping (typically the parsed CLI
    options); keys are sorted so equal configurations always fingerprint
    identically across runs and machines.
    """
    blob = json.dumps(options, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


def default_manifest_path(command, args):
    """Where a command's manifest lands when ``--manifest-out`` is unset.

    Anchored next to the command's primary artifact so scratch runs in
    temp directories keep their manifests with them; commands with no
    file artifact (``attack``, ``workloads``, ...) default to no
    manifest.
    """
    for attr in _MANIFEST_ANCHORS.get(command, ()):
        anchor = getattr(args, attr, None)
        if anchor:
            return f"{anchor}.{command}-manifest.json"
    return None


def _stage_timings(snapshot):
    """Extract ``stage.*`` timers into a flat stage -> seconds view."""
    stages = {}
    for name, summary in snapshot.get("timers", {}).items():
        if name.startswith("stage."):
            stages[name[len("stage."):]] = {
                "seconds": round(summary["total_s"], 6),
                "count": summary["count"],
            }
    return stages


def _failure_taxonomy(snapshot):
    """Quarantine counts by kind, from the runner's failure counters,
    plus the training-guard trip taxonomy when any trips occurred."""
    counters = snapshot.get("counters", {})
    prefix = "runner.failures."
    taxonomy = {name[len(prefix):]: value
                for name, value in counters.items()
                if name.startswith(prefix) and value}
    taxonomy["quarantined"] = counters.get("runner.tasks.quarantined", 0)
    guard_prefix = "guard.trips."
    training = {name[len(guard_prefix):]: value
                for name, value in counters.items()
                if name.startswith(guard_prefix) and value}
    if training:
        training["rollbacks"] = counters.get("guard.rollbacks", 0)
        taxonomy["training"] = training
    holes = counters.get("campaign.cells.holes", 0)
    corrupt = counters.get("campaign.cache.corrupt", 0)
    if holes or corrupt:
        taxonomy["campaign"] = {"holes": holes, "cache_corrupt": corrupt}
    arena_holes = counters.get("arena.genomes.holes", 0)
    arena_rollbacks = counters.get("arena.gate.rollbacks", 0)
    arena_corrupt = counters.get("arena.checkpoint.corrupt", 0)
    if arena_holes or arena_rollbacks or arena_corrupt:
        taxonomy["arena"] = {
            "holes": arena_holes,
            "gate_rollbacks": arena_rollbacks,
            "checkpoint_corrupt": arena_corrupt,
        }
    return taxonomy


def build_manifest(*, command, argv, run_id, started, finished, exit_code,
                   error=None, options=None, snapshot=None, lineage=None):
    """Assemble the manifest dict (see ``docs/observability.md``).

    ``lineage`` is ``None`` for a fresh run, or ``{"parent_run": ...,
    "resumed_from_iteration": ...}`` when training resumed from a
    checkpoint written by an earlier run.
    """
    snapshot = snapshot if snapshot is not None else {}
    options = dict(options or {})
    return {
        "schema": MANIFEST_SCHEMA,
        "run": {
            "id": run_id,
            "command": command,
            "argv": list(argv) if argv is not None else None,
            "started": round(started, 6),
            "finished": round(finished, 6),
            "duration_s": round(finished - started, 6),
            "python": platform.python_version(),
            "platform": sys.platform,
        },
        "config": {
            "options": options,
            "fingerprint": config_fingerprint(options),
        },
        "status": {
            "ok": exit_code == 0 and error is None,
            "exit_code": exit_code,
            "error": error,
        },
        "lineage": lineage,
        "stages": _stage_timings(snapshot),
        "failures": _failure_taxonomy(snapshot),
        "metrics": snapshot,
    }


def write_manifest(path, manifest):
    """Atomically persist ``manifest`` as pretty-printed JSON."""
    # imported lazily: repro.runtime instruments itself through repro.obs,
    # so obs must not need runtime at import time
    from repro.runtime.atomic import atomic_write_bytes
    blob = json.dumps(manifest, indent=2, sort_keys=False, default=str)
    atomic_write_bytes(path, blob.encode("utf-8"))
    return path


def read_manifest(path):
    """Load a manifest back; raises ``ValueError`` on schema mismatch."""
    with open(path, "r", encoding="utf-8") as f:
        manifest = json.load(f)
    if manifest.get("schema") != MANIFEST_SCHEMA:
        raise ValueError(f"not a run manifest (schema="
                         f"{manifest.get('schema')!r}): {path}")
    return manifest
