"""Per-command observability lifecycle for the CLI.

:class:`RunContext` is the ``with`` block around every dispatched
command in :func:`repro.cli.main`:

* **enter** — mint a run id, reset the global metrics registry (so each
  command's manifest reflects only its own work), configure the JSONL
  log from ``--log-file``/``--log-level`` with the run context bound,
  and start ``cProfile`` when ``--profile`` asked for it;
* **exit** — always, including on ``SystemExit`` and crashes: stop the
  profiler and dump ``.pstats``, snapshot metrics (optionally to
  ``--metrics-out``), and atomically write the run manifest with the
  status, stage timings and failure taxonomy of whatever just happened.
"""

import time
import uuid

from repro.obs.log import get_log, obs_event
from repro.obs.manifest import (
    build_manifest, default_manifest_path, write_manifest,
)
from repro.obs.metrics import metrics

#: argparse attributes that are observability plumbing, not run config
_NON_CONFIG_OPTIONS = frozenset({
    "func", "command", "log_file", "log_level", "metrics_out",
    "manifest_out", "no_manifest", "profile",
})


def _command_options(args):
    """The command's effective configuration, JSON-able."""
    return {k: v for k, v in sorted(vars(args).items())
            if k not in _NON_CONFIG_OPTIONS}


#: the RunContext currently wrapping the process's CLI command, if any
_ACTIVE = None


def current_run_id():
    """Run id of the active CLI command (``None`` outside the CLI).
    Training checkpoints embed it so a resumed run can name its parent."""
    return _ACTIVE.run_id if _ACTIVE is not None else None


def record_lineage(parent_run=None, checkpoint_iteration=None):
    """Mark the active run as resumed from a training checkpoint.

    Called by the vaccination pipeline when it restores GAN state; the
    manifest's ``lineage`` section then distinguishes a resumed ``train``
    from a fresh one (parent run id + the iteration resumed from).
    """
    if _ACTIVE is not None:
        _ACTIVE.lineage = {"parent_run": parent_run,
                           "resumed_from_iteration": checkpoint_iteration}


class RunContext:
    """Observability wrapper for one CLI command invocation."""

    def __init__(self, args, argv=None):
        self.args = args
        self.argv = list(argv) if argv is not None else None
        self.command = getattr(args, "command", None) or "unknown"
        self.run_id = uuid.uuid4().hex[:12]
        self.exit_code = 0
        self.error = None
        self.started = None
        self.manifest_path = None
        self.lineage = None
        self._profiler = None

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self):
        global _ACTIVE
        _ACTIVE = self
        self.started = time.time()
        metrics().reset()
        log = get_log()
        log.configure(path=getattr(self.args, "log_file", None),
                      level=getattr(self.args, "log_level", "info") or "info",
                      run=self.run_id,
                      command=self.command,
                      seed=getattr(self.args, "seed", None))
        profile_out = getattr(self.args, "profile", None)
        if profile_out:
            import cProfile
            self._profiler = cProfile.Profile()
            self._profiler.enable()
        obs_event("cli.start", argv=self.argv)
        return self

    def __exit__(self, exc_type, exc, tb):
        global _ACTIVE
        if _ACTIVE is self:
            _ACTIVE = None
        if self._profiler is not None:
            self._profiler.disable()
            self._profiler.dump_stats(self.args.profile)
        if exc is not None:
            if isinstance(exc, SystemExit):
                code = exc.code
                self.exit_code = code if isinstance(code, int) else \
                    (0 if code is None else 1)
                if self.exit_code != 0:
                    self.error = {"type": "SystemExit",
                                  "message": str(code)}
            else:
                self.exit_code = 1
                self.error = {"type": exc_type.__name__, "message": str(exc)}
        finished = time.time()
        snapshot = metrics().snapshot()
        self._write_metrics(snapshot)
        self._write_manifest(snapshot, finished)
        obs_event("cli.end",
                  level="error" if self.error else "info",
                  status="error" if self.error else "ok",
                  exit_code=self.exit_code,
                  duration_s=round(finished - self.started, 6))
        get_log().close()
        return False                       # never swallow the exception

    # -- outputs -----------------------------------------------------------

    def _write_metrics(self, snapshot):
        path = getattr(self.args, "metrics_out", None)
        if not path:
            return
        import json
        from repro.runtime.atomic import atomic_write_bytes
        try:
            atomic_write_bytes(path, json.dumps(
                snapshot, indent=2, default=str).encode("utf-8"))
        except OSError:
            pass                   # diagnostics must not mask the run result

    def _write_manifest(self, snapshot, finished):
        if getattr(self.args, "no_manifest", False):
            return
        path = getattr(self.args, "manifest_out", None) or \
            default_manifest_path(self.command, self.args)
        if path is None:
            return
        manifest = build_manifest(
            command=self.command, argv=self.argv, run_id=self.run_id,
            started=self.started, finished=finished,
            exit_code=self.exit_code, error=self.error,
            options=_command_options(self.args), snapshot=snapshot,
            lineage=self.lineage)
        try:
            self.manifest_path = write_manifest(path, manifest)
            obs_event("manifest.written", path=path)
        except OSError:
            pass                   # diagnostics must not mask the run result
