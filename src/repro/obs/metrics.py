"""A lightweight, dependency-free metrics registry.

Three instrument kinds, all plain Python objects:

* :class:`Counter` — monotonically increasing integer (events, windows,
  retries).
* :class:`Gauge` — last-written value (losses, coverage, style scores).
* :class:`Timer` — wall-clock histogram summary (count / total / min /
  max) fed by :meth:`Timer.observe` or the :meth:`MetricsRegistry.
  time_block` context manager.

Design constraints, in order:

1. **Hot-path cost.** The simulator retires hundreds of thousands of
   instructions per run; instrumentation there is *aggregated at run
   boundaries* (one handful of counter adds per :meth:`Machine.run`),
   never per cycle.  Sites that do fire repeatedly (sampler windows,
   ``train_batch``) cache the instrument object once and pay a single
   attribute increment per event.  ``registry.enabled = False`` turns
   every instrument into a no-op without invalidating cached handles.
2. **Determinism.** Counters and gauges depend only on the workload and
   seed, so two runs of the same command produce identical counter
   snapshots; wall-clock noise is confined to timers.  ``snapshot()``
   emits sorted keys so serialized snapshots are byte-stable modulo
   timer durations.
3. **Identity stability.** ``reset()`` zeroes instruments *in place*
   (it never replaces the objects), so module-level cached handles in
   hot paths survive a reset between CLI commands or tests.

Metric names are dotted strings, ``layer.subsystem.metric``; the
canonical set lives in :mod:`repro.obs.names` and is what
``docs/observability.md`` is checked against.
"""

import time
from contextlib import contextmanager


class Counter:
    """Monotonic event count."""

    __slots__ = ("registry", "value")

    def __init__(self, registry):
        self.registry = registry
        self.value = 0

    def inc(self, n=1):
        if self.registry.enabled:
            self.value += n


class Gauge:
    """Last-written value (float)."""

    __slots__ = ("registry", "value")

    def __init__(self, registry):
        self.registry = registry
        self.value = 0.0

    def set(self, value):
        if self.registry.enabled:
            self.value = float(value)


class Timer:
    """Wall-clock duration summary (count / total / min / max)."""

    __slots__ = ("registry", "count", "total", "min", "max")

    def __init__(self, registry):
        self.registry = registry
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, seconds):
        if not self.registry.enabled:
            return
        seconds = float(seconds)
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    @contextmanager
    def time(self):
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.observe(time.perf_counter() - start)

    def summary(self):
        return {
            "count": self.count,
            "total_s": self.total,
            "min_s": self.min if self.count else 0.0,
            "max_s": self.max,
            "mean_s": self.total / self.count if self.count else 0.0,
        }


@contextmanager
def _null_block():
    yield None


class MetricsRegistry:
    """Name -> instrument store with lazy creation.

    A name is permanently bound to the first instrument kind that
    claimed it; asking for the same name as a different kind raises,
    because silently shadowing a counter with a timer would corrupt the
    snapshot.
    """

    def __init__(self, enabled=True):
        self.enabled = enabled
        self._counters = {}
        self._gauges = {}
        self._timers = {}

    # -- instrument access -------------------------------------------------

    def _get(self, store, name, factory, kind):
        inst = store.get(name)
        if inst is None:
            for other_kind, other in (("counter", self._counters),
                                      ("gauge", self._gauges),
                                      ("timer", self._timers)):
                if other is not store and name in other:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{other_kind}, requested as {kind}")
            inst = store[name] = factory(self)
        return inst

    def counter(self, name):
        return self._get(self._counters, name, Counter, "counter")

    def gauge(self, name):
        return self._get(self._gauges, name, Gauge, "gauge")

    def timer(self, name):
        return self._get(self._timers, name, Timer, "timer")

    # -- convenience -------------------------------------------------------

    def inc(self, name, n=1):
        self.counter(name).inc(n)

    def set_gauge(self, name, value):
        self.gauge(name).set(value)

    def observe(self, name, seconds):
        self.timer(name).observe(seconds)

    def time_block(self, name):
        """Context manager timing its body into timer ``name``."""
        if not self.enabled:
            return _null_block()
        return self.timer(name).time()

    # -- lifecycle ---------------------------------------------------------

    def reset(self):
        """Zero every instrument in place (cached handles stay valid)."""
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = 0.0
        for timer in self._timers.values():
            timer.count = 0
            timer.total = 0.0
            timer.min = float("inf")
            timer.max = 0.0

    def names(self):
        """Every registered metric name, sorted."""
        return sorted(set(self._counters) | set(self._gauges)
                      | set(self._timers))

    def snapshot(self):
        """Deterministically-ordered plain-dict view of every instrument.

        Counters and gauges are exact values; timers are summaries.
        Safe to ``json.dumps`` directly.
        """
        return {
            "counters": {k: self._counters[k].value
                         for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k].value
                       for k in sorted(self._gauges)},
            "timers": {k: self._timers[k].summary()
                       for k in sorted(self._timers)},
        }


#: the process-global registry every instrumentation site records into
_GLOBAL = MetricsRegistry()


def metrics():
    """The process-global :class:`MetricsRegistry`."""
    return _GLOBAL


def time_block(name):
    """``metrics().time_block(name)`` shorthand for instrumentation sites."""
    return _GLOBAL.time_block(name)
