"""Structured JSONL event logging.

One event per line, each a self-contained JSON object::

    {"ts": 1754450000.123, "level": "info", "event": "task.finished",
     "run": "a1b2c3d4e5f6", "seed": 1, "config": "9f8e...",
     "key": "003-atk-meltdown-s1", "attempts": 1, "elapsed_s": 0.41}

* ``ts`` / ``level`` / ``event`` are always present.
* Run context (``run`` id, ``seed``, ``config`` fingerprint, bound via
  :meth:`EventLog.bind`) is merged into every event, so any line can be
  joined back to its run manifest without surrounding context.
* Levels are ``debug < info < warn < error``; events below the
  threshold are dropped before any formatting work.

Logging is **disabled by default** — with no sink configured,
:func:`obs_event` is a dict lookup and one ``None`` check, which keeps
instrumented hot paths essentially free until ``--log-file`` opts in.
"""

import json
import sys
import time

LEVELS = {"debug": 10, "info": 20, "warn": 30, "error": 40}


class EventLog:
    """A JSONL sink with a level threshold and bound run context."""

    def __init__(self):
        self._sink = None
        self._owns_sink = False
        self._threshold = LEVELS["info"]
        self._context = {}

    # -- configuration -----------------------------------------------------

    def configure(self, path=None, stream=None, level="info", **context):
        """Attach a sink (a file path or an open stream) and bind context.

        ``path`` takes precedence over ``stream``; ``stream="stderr"``
        is accepted as a convenience.  Returns ``self``.
        """
        if level not in LEVELS:
            raise ValueError(f"unknown log level {level!r}; "
                             f"choose from {sorted(LEVELS)}")
        self.close()
        if path is not None:
            self._sink = open(path, "a", encoding="utf-8")
            self._owns_sink = True
        elif stream == "stderr":
            self._sink = sys.stderr
        elif stream is not None:
            self._sink = stream
        self._threshold = LEVELS[level]
        self._context = {}
        self.bind(**context)
        return self

    def bind(self, **context):
        """Merge fields into the context attached to every event."""
        self._context.update({k: v for k, v in context.items()
                              if v is not None})
        return self

    @property
    def active(self):
        return self._sink is not None

    # -- emission ----------------------------------------------------------

    def event(self, name, level="info", **fields):
        """Emit one structured event (dropped when below threshold or no
        sink is configured)."""
        if self._sink is None or LEVELS.get(level, 20) < self._threshold:
            return
        record = {"ts": round(time.time(), 6), "level": level, "event": name}
        record.update(self._context)
        record.update(fields)
        try:
            line = json.dumps(record, default=str, sort_keys=False)
            self._sink.write(line + "\n")
            self._sink.flush()
        except (OSError, ValueError):
            pass                       # a dead sink must never kill the run

    def close(self):
        if self._sink is not None and self._owns_sink:
            try:
                self._sink.close()
            except OSError:
                pass
        self._sink = None
        self._owns_sink = False


#: the process-global event log every instrumentation site emits into
_GLOBAL = EventLog()


def get_log():
    """The process-global :class:`EventLog`."""
    return _GLOBAL


def obs_event(name, level="info", **fields):
    """Emit ``name`` on the global log (no-op until configured)."""
    _GLOBAL.event(name, level=level, **fields)


def read_events(path):
    """Parse a JSONL event file back into a list of dicts.

    Blank lines are skipped; a torn final line (crash mid-write) is
    dropped rather than raised, since logs must stay readable after the
    very failures they exist to diagnose.
    """
    events = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return events
