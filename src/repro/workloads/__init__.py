"""Benign SPEC-like workload kernels for FP measurement and IPC studies."""

from repro.workloads.spec import (
    WORKLOAD_BUILDERS, Workload, all_workloads,
    build_astar, build_callgraph, build_compress, build_crypto,
    build_eventsim, build_genematch, build_matmul, build_phased,
    build_pointer_chase, build_sort, build_stream,
)

__all__ = [
    "WORKLOAD_BUILDERS", "Workload", "all_workloads",
    "build_stream", "build_pointer_chase", "build_matmul", "build_sort",
    "build_astar", "build_compress", "build_genematch", "build_eventsim",
    "build_crypto", "build_phased", "build_callgraph",
]
