"""Benign SPEC-CPU-like kernels.

The paper runs SPEC CPU2006 applications (compression, optimization
scheduling, network simulation, AI, discrete-event simulation, gene
sequence analysis, A*, ...).  These synthetic kernels stress the same mix
of pipeline behaviours — sequential streaming, pointer chasing, dense
multiply compute, branchy sorting/searching, queue-driven simulation — and
serve as the benign corpus for false-positive measurement and as the
workloads for the overhead experiments (Figures 14 and 16).
"""

import random

from repro.sim import Program, ProgramBuilder

_HEAP = 0x100000


class Workload:
    """A named benign program generator (mirrors the Attack interface)."""

    def __init__(self, name, builder, scale=1, seed=0):
        self.name = name
        self.category = "benign"
        self._builder = builder
        self.scale = scale
        self.seed = seed

    def build(self):
        return self._builder(scale=self.scale, seed=self.seed), []


def build_stream(scale=1, seed=0):
    """Sequential streaming: read an array, accumulate, write back."""
    n = 220 * scale
    b = ProgramBuilder("stream")
    rng = random.Random(seed)
    for i in range(64):
        b.data(_HEAP + 8 * i, rng.randrange(1000))
    b.reg(15, 0x8000)
    b.movi(1, _HEAP)
    b.movi(2, 0)          # accumulator
    b.movi(3, 0)          # index
    b.movi(4, n)
    b.label("loop")
    b.andi(5, 3, 63)
    b.shl(5, 5, 3)
    b.add(5, 5, 1)
    b.load(6, 5, 0)
    b.add(2, 2, 6)
    b.store(5, 2, 0x2000)
    b.addi(3, 3, 1)
    b.blt(3, 4, "loop")
    b.store(1, 2, 0x4000)
    b.halt()
    return b.build()


def build_pointer_chase(scale=1, seed=0):
    """Linked-list traversal: dependent loads over a shuffled ring."""
    nodes = 96
    b = ProgramBuilder("pointer-chase")
    rng = random.Random(seed + 1)
    order = list(range(1, nodes)) + [0]
    rng.shuffle(order)
    # node i -> address of node order[i]; spread nodes over many lines
    addrs = [_HEAP + 0x10000 + 104 * i for i in range(nodes)]
    ring = {}
    cur = 0
    for _ in range(nodes):
        nxt = order[cur]
        ring[addrs[cur]] = addrs[nxt]
        cur = nxt
    for a, v in ring.items():
        b.data(a, v)
    b.reg(15, 0x8000)
    b.movi(1, addrs[0])
    b.movi(3, 0)
    b.movi(4, 40 * scale)
    b.label("loop")
    b.load(1, 1, 0)       # chase
    b.addi(3, 3, 1)
    b.blt(3, 4, "loop")
    b.store(15, 1, 0x100)
    b.halt()
    return b.build()


def build_matmul(scale=1, seed=0):
    """Dense multiply-accumulate: the compute-bound AI-ish kernel."""
    b = ProgramBuilder("matmul")
    rng = random.Random(seed + 2)
    dim = 8
    for i in range(dim * dim):
        b.data(_HEAP + 0x20000 + 8 * i, rng.randrange(64))
        b.data(_HEAP + 0x21000 + 8 * i, rng.randrange(64))
    b.reg(15, 0x8000)
    b.movi(1, _HEAP + 0x20000)
    b.movi(2, _HEAP + 0x21000)
    b.movi(3, 0)                      # flat output index
    b.movi(4, dim * dim * scale)
    b.label("outer")
    b.andi(5, 3, 63)
    b.shl(6, 5, 3)
    b.add(6, 6, 1)
    b.load(7, 6, 0)
    b.shl(6, 5, 3)
    b.add(6, 6, 2)
    b.load(8, 6, 0)
    b.mul(9, 7, 8)
    b.mul(10, 9, 7)
    b.add(11, 10, 9)
    b.shl(6, 5, 3)
    b.store(6, 11, _HEAP + 0x22000)
    b.addi(3, 3, 1)
    b.blt(3, 4, "outer")
    b.halt()
    return b.build()


def build_sort(scale=1, seed=0):
    """Insertion-sort-like branchy compares with data-dependent branches."""
    n = 28
    b = ProgramBuilder("sort")
    rng = random.Random(seed + 3)
    base = _HEAP + 0x30000
    for i in range(n):
        b.data(base + 8 * i, rng.randrange(1 << 16))
    b.reg(15, 0x8000)
    b.movi(9, 0)
    b.movi(10, scale)
    b.label("pass_loop")
    b.movi(1, 0)
    b.movi(2, n - 1)
    b.label("sweep")
    b.shl(3, 1, 3)
    b.addi(3, 3, base)
    b.load(4, 3, 0)
    b.load(5, 3, 8)
    b.blt(4, 5, "inorder")
    b.store(3, 5, 0)
    b.store(3, 4, 8)
    b.label("inorder")
    b.addi(1, 1, 1)
    b.blt(1, 2, "sweep")
    b.addi(9, 9, 1)
    b.blt(9, 10, "pass_loop")
    b.halt()
    return b.build()


def build_astar(scale=1, seed=0):
    """Grid walk with data-dependent turns (the A*-style workload)."""
    side = 32
    b = ProgramBuilder("astar")
    rng = random.Random(seed + 4)
    base = _HEAP + 0x40000
    for i in range(side * side // 4):
        b.data(base + 8 * i, rng.randrange(4))
    b.reg(15, 0x8000)
    b.movi(1, 0)          # position
    b.movi(3, 0)
    b.movi(4, 160 * scale)
    b.movi(7, 0)          # path cost
    b.label("step")
    b.andi(5, 1, 255)
    b.shl(5, 5, 3)
    b.addi(5, 5, base)
    b.load(6, 5, 0)       # terrain cost / direction
    b.add(7, 7, 6)
    b.movi(8, 2)
    b.blt(6, 8, "go_east")
    b.addi(1, 1, 31)      # move south-ish
    b.jmp("moved")
    b.label("go_east")
    b.addi(1, 1, 1)
    b.label("moved")
    b.addi(3, 3, 1)
    b.blt(3, 4, "step")
    b.store(15, 7, 0x200)
    b.halt()
    return b.build()


def build_compress(scale=1, seed=0):
    """Run-length scanning: byte-wise compares, unpredictable branches."""
    n = 120
    b = ProgramBuilder("compress")
    rng = random.Random(seed + 5)
    base = _HEAP + 0x50000
    value = 0
    for i in range(n):
        if rng.random() < 0.4:
            value = rng.randrange(4)
        b.data(base + 8 * i, value)
    b.reg(15, 0x8000)
    b.movi(1, 0)          # index
    b.movi(2, n)
    b.movi(3, 0)          # run count
    b.movi(9, 0)
    b.movi(10, 2 * scale)
    b.label("restart")
    b.movi(1, 0)
    b.label("scan")
    b.shl(4, 1, 3)
    b.addi(4, 4, base)
    b.load(5, 4, 0)
    b.load(6, 4, 8)
    b.bne(5, 6, "break_run")
    b.addi(3, 3, 1)
    b.label("break_run")
    b.addi(1, 1, 1)
    b.addi(7, 2, -1)
    b.blt(1, 7, "scan")
    b.addi(9, 9, 1)
    b.blt(9, 10, "restart")
    b.store(15, 3, 0x300)
    b.halt()
    return b.build()


def build_genematch(scale=1, seed=0):
    """Sequence alignment scoring: nested compare-accumulate loops."""
    n = 48
    b = ProgramBuilder("genematch")
    rng = random.Random(seed + 6)
    base_a = _HEAP + 0x60000
    base_b = _HEAP + 0x61000
    for i in range(n):
        b.data(base_a + 8 * i, rng.randrange(4))
        b.data(base_b + 8 * i, rng.randrange(4))
    b.reg(15, 0x8000)
    b.movi(7, 0)          # score
    b.movi(9, 0)
    b.movi(10, 3 * scale)
    b.label("round")
    b.movi(1, 0)
    b.movi(2, n)
    b.label("cmp")
    b.shl(3, 1, 3)
    b.addi(4, 3, base_a)
    b.addi(5, 3, base_b)
    b.load(4, 4, 0)
    b.load(5, 5, 0)
    b.bne(4, 5, "mismatch")
    b.addi(7, 7, 3)
    b.jmp("next")
    b.label("mismatch")
    b.addi(7, 7, -1)
    b.label("next")
    b.addi(1, 1, 1)
    b.blt(1, 2, "cmp")
    b.addi(9, 9, 1)
    b.blt(9, 10, "round")
    b.store(15, 7, 0x400)
    b.halt()
    return b.build()


def build_eventsim(scale=1, seed=0):
    """Discrete-event-simulator-style queue churn: indirect function
    dispatch (through a jump table) plus queue memory traffic."""
    b = ProgramBuilder("eventsim")
    rng = random.Random(seed + 7)
    qbase = _HEAP + 0x70000
    for i in range(32):
        b.data(qbase + 8 * i, rng.randrange(3))
    b.reg(15, 0x8000)
    b.data_label(qbase + 0x1000, "h0")
    b.data_label(qbase + 0x1008, "h1")
    b.data_label(qbase + 0x1010, "h2")
    b.movi(1, 0)
    b.movi(2, 60 * scale)
    b.movi(7, 0)
    b.label("loop")
    b.andi(3, 1, 31)
    b.shl(3, 3, 3)
    b.addi(3, 3, qbase)
    b.load(4, 3, 0)            # event kind 0..2
    b.shl(4, 4, 3)
    b.addi(4, 4, qbase + 0x1000)
    b.load(4, 4, 0)            # handler address
    b.movi_label(0, "done_evt")
    b.jmpi(4)
    b.label("h0")
    b.addi(7, 7, 1)
    b.jmpi(0)
    b.label("h1")
    b.addi(7, 7, 2)
    b.store(3, 7, 0x100)
    b.jmpi(0)
    b.label("h2")
    b.mul(7, 7, 7)
    b.andi(7, 7, 1023)
    b.jmpi(0)
    b.label("done_evt")
    b.addi(1, 1, 1)
    b.blt(1, 2, "loop")
    b.halt()
    return b.build()


def build_crypto(scale=1, seed=0):
    """ALU-bound xor/shift/multiply rounds (crypto-ish mixing)."""
    b = ProgramBuilder("crypto")
    b.reg(15, 0x8000)
    b.movi(1, 0x12345)
    b.movi(2, 0x6789B)
    b.movi(3, 0)
    b.movi(4, 90 * scale)
    b.label("round")
    b.xor(1, 1, 2)
    b.shl(5, 1, 5)
    b.shr(6, 1, 3)
    b.xor(1, 5, 6)
    b.mul(2, 2, 1)
    b.andi(2, 2, (1 << 30) - 1)
    b.addi(3, 3, 1)
    b.blt(3, 4, "round")
    b.store(15, 1, 0x500)
    b.halt()
    return b.build()


def build_phased(scale=1, seed=0):
    """Phase-alternating program: compute bursts then memory bursts,
    mimicking multi-phase applications."""
    b = ProgramBuilder("phased")
    rng = random.Random(seed + 9)
    base = _HEAP + 0x80000
    for i in range(64):
        b.data(base + 8 * i, rng.randrange(100))
    b.reg(15, 0x8000)
    b.movi(9, 0)
    b.movi(10, 4 * scale)
    b.label("phase_loop")
    # compute phase
    b.movi(1, 7)
    b.movi(3, 0)
    b.movi(4, 24)
    b.label("compute")
    b.mul(1, 1, 1)
    b.andi(1, 1, 0xFFFF)
    b.addi(1, 1, 3)
    b.addi(3, 3, 1)
    b.blt(3, 4, "compute")
    # memory phase
    b.movi(3, 0)
    b.movi(4, 24)
    b.label("memory")
    b.andi(5, 3, 63)
    b.shl(5, 5, 3)
    b.addi(5, 5, base)
    b.load(6, 5, 0)
    b.add(1, 1, 6)
    b.store(5, 1, 0x2000)
    b.addi(3, 3, 1)
    b.blt(3, 4, "memory")
    b.addi(9, 9, 1)
    b.blt(9, 10, "phase_loop")
    b.halt()
    return b.build()


def build_callgraph(scale=1, seed=0):
    """Deep call/return chains (RAS exercise) with small leaf work."""
    b = ProgramBuilder("callgraph")
    b.reg(15, 0x8000)
    b.movi(1, 0)
    b.movi(2, 40 * scale)
    b.movi(7, 0)
    b.label("loop")
    b.call("f1")
    b.addi(1, 1, 1)
    b.blt(1, 2, "loop")
    b.halt()
    b.label("f1")
    b.addi(7, 7, 1)
    b.call("f2")
    b.ret()
    b.label("f2")
    b.mul(8, 7, 7)
    b.call("f3")
    b.ret()
    b.label("f3")
    b.andi(8, 8, 255)
    b.add(7, 7, 8)
    b.ret()
    return b.build()


def build_fft(scale=1, seed=0):
    """Butterfly-style strided compute: shifting strides + mul-heavy mixing
    (the signal-processing workload class)."""
    n = 32
    b = ProgramBuilder("fft")
    rng = random.Random(seed + 10)
    base = _HEAP + 0x90000
    for i in range(n):
        b.data(base + 8 * i, rng.randrange(1 << 12))
    b.reg(15, 0x8000)
    b.movi(9, 0)
    b.movi(10, 3 * scale)
    b.label("pass_loop")
    b.movi(7, 1)            # stride: 1, 2, 4, 8, 16
    b.label("stage")
    b.movi(1, 0)
    b.movi(2, n // 2)
    b.label("butterfly")
    b.shl(3, 1, 3)
    b.addi(3, 3, base)
    b.load(4, 3, 0)
    b.shl(5, 7, 3)
    b.add(5, 5, 3)
    b.load(6, 5, 0)
    b.add(8, 4, 6)          # a + b
    b.sub(6, 4, 6)          # a - b
    b.mul(6, 6, 7)          # twiddle-ish
    b.andi(6, 6, 0xFFFF)
    b.store(3, 8, 0)
    b.store(5, 6, 0)
    b.addi(1, 1, 1)
    b.blt(1, 2, "butterfly")
    b.shl(7, 7, 1)
    b.movi(2, 17)
    b.blt(7, 2, "stage")
    b.addi(9, 9, 1)
    b.blt(9, 10, "pass_loop")
    b.halt()
    return b.build()


def build_dijkstra(scale=1, seed=0):
    """Shortest-path-style relaxation sweeps: indexed loads, compares and
    conditional updates (the optimization/scheduling workload class)."""
    nodes = 24
    b = ProgramBuilder("dijkstra")
    rng = random.Random(seed + 11)
    dist = _HEAP + 0xA0000
    weight = _HEAP + 0xA1000
    for i in range(nodes):
        b.data(dist + 8 * i, 10_000 if i else 0)
        b.data(weight + 8 * i, rng.randrange(1, 60))
    b.reg(15, 0x8000)
    b.movi(9, 0)
    b.movi(10, 4 * scale)
    b.label("sweep")
    b.movi(1, 0)
    b.movi(2, nodes - 1)
    b.label("relax")
    b.shl(3, 1, 3)
    b.addi(4, 3, dist)
    b.load(5, 4, 0)           # dist[i]
    b.addi(6, 3, weight)
    b.load(6, 6, 0)           # w(i, i+1)
    b.add(5, 5, 6)            # candidate
    b.load(7, 4, 8)           # dist[i+1]
    b.blt(7, 5, "no_update")
    b.store(4, 5, 8)
    b.label("no_update")
    b.addi(1, 1, 1)
    b.blt(1, 2, "relax")
    b.addi(9, 9, 1)
    b.blt(9, 10, "sweep")
    b.halt()
    return b.build()


def build_hashjoin(scale=1, seed=0):
    """Hash-table probe joins: hashed indexed accesses over a wide table
    (the database workload class — irregular but repeating addresses)."""
    buckets = 64
    b = ProgramBuilder("hashjoin")
    rng = random.Random(seed + 12)
    table = _HEAP + 0xB0000
    keys = _HEAP + 0xB8000
    for i in range(buckets):
        b.data(table + 8 * i, rng.randrange(1 << 10))
    nkeys = 40
    for i in range(nkeys):
        b.data(keys + 8 * i, rng.randrange(1 << 16))
    b.reg(15, 0x8000)
    b.movi(7, 0)              # matches
    b.movi(9, 0)
    b.movi(10, 3 * scale)
    b.label("round")
    b.movi(1, 0)
    b.movi(2, nkeys)
    b.label("probe")
    b.shl(3, 1, 3)
    b.addi(3, 3, keys)
    b.load(4, 3, 0)           # key
    b.mul(5, 4, 4)            # hash: key^2 mod buckets
    b.andi(5, 5, buckets - 1)
    b.shl(5, 5, 3)
    b.addi(5, 5, table)
    b.load(6, 5, 0)           # bucket value
    b.andi(4, 4, 1023)
    b.bne(6, 4, "miss")
    b.addi(7, 7, 1)
    b.label("miss")
    b.addi(1, 1, 1)
    b.blt(1, 2, "probe")
    b.addi(9, 9, 1)
    b.blt(9, 10, "round")
    b.store(15, 7, 0x600)
    b.halt()
    return b.build()


def build_stencil(scale=1, seed=0):
    """1-D three-point stencil sweeps (the scientific-computing class:
    neighbouring loads, regular strides, store-back)."""
    n = 48
    b = ProgramBuilder("stencil")
    rng = random.Random(seed + 13)
    grid = _HEAP + 0xC0000
    for i in range(n):
        b.data(grid + 8 * i, rng.randrange(256))
    b.reg(15, 0x8000)
    b.movi(9, 0)
    b.movi(10, 4 * scale)
    b.label("sweep")
    b.movi(1, 1)
    b.movi(2, n - 1)
    b.label("cell")
    b.shl(3, 1, 3)
    b.addi(3, 3, grid)
    b.load(4, 3, -8)
    b.load(5, 3, 0)
    b.load(6, 3, 8)
    b.add(4, 4, 6)
    b.add(4, 4, 5)
    b.shr(4, 4, 1)            # (l + c + r) / 2 smoothing-ish
    b.andi(4, 4, 1023)
    b.store(3, 4, 0)
    b.addi(1, 1, 1)
    b.blt(1, 2, "cell")
    b.addi(9, 9, 1)
    b.blt(9, 10, "sweep")
    b.halt()
    return b.build()


def build_bfs(scale=1, seed=0):
    """Queue-driven breadth-first traversal: a work queue in memory with
    data-dependent enqueue (the graph-analytics class)."""
    nodes = 40
    b = ProgramBuilder("bfs")
    rng = random.Random(seed + 14)
    adj = _HEAP + 0xD0000        # adj[i] = a pseudo neighbour of i
    queue = _HEAP + 0xD8000
    for i in range(nodes):
        b.data(adj + 8 * i, rng.randrange(nodes))
    b.reg(15, 0x8000)
    b.movi(1, queue)
    b.movi(2, 0)
    b.store(1, 2, 0)          # queue[0] = node 0
    b.movi(3, 0)              # head
    b.movi(4, 1)              # tail
    b.movi(10, 30 * scale)    # visit budget
    b.movi(9, 0)
    b.label("visit")
    b.shl(5, 3, 3)
    b.add(5, 5, 1)
    b.load(6, 5, 0)           # node = queue[head]
    b.shl(7, 6, 3)
    b.addi(7, 7, adj)
    b.load(7, 7, 0)           # neighbour
    b.shl(8, 4, 3)
    b.add(8, 8, 1)
    b.store(8, 7, 0)          # enqueue neighbour
    b.addi(4, 4, 1)
    b.andi(4, 4, 63)          # ring queue
    b.addi(3, 3, 1)
    b.andi(3, 3, 63)
    b.addi(9, 9, 1)
    b.blt(9, 10, "visit")
    b.halt()
    return b.build()


def build_lrusim(scale=1, seed=0):
    """A software LRU-cache simulator simulating itself: lookup loops with
    shift-register recency updates (the systems-software class)."""
    ways = 8
    b = ProgramBuilder("lrusim")
    rng = random.Random(seed + 15)
    tags = _HEAP + 0xE0000
    refs = _HEAP + 0xE8000
    nrefs = 36
    for i in range(ways):
        b.data(tags + 8 * i, i)
    for i in range(nrefs):
        b.data(refs + 8 * i, rng.randrange(12))
    b.reg(15, 0x8000)
    b.movi(7, 0)              # hit count
    b.movi(9, 0)
    b.movi(10, 3 * scale)
    b.label("round")
    b.movi(1, 0)
    b.movi(2, nrefs)
    b.label("ref")
    b.shl(3, 1, 3)
    b.addi(3, 3, refs)
    b.load(4, 3, 0)           # referenced tag
    b.movi(5, 0)              # way index
    b.movi(11, ways)
    b.label("lookup")
    b.shl(6, 5, 3)
    b.addi(6, 6, tags)
    b.load(8, 6, 0)
    b.beq(8, 4, "hit")
    b.addi(5, 5, 1)
    b.blt(5, 11, "lookup")
    # miss: install in way 0 (victim)
    b.movi(6, tags)
    b.store(6, 4, 0)
    b.jmp("next_ref")
    b.label("hit")
    b.addi(7, 7, 1)
    b.label("next_ref")
    b.addi(1, 1, 1)
    b.blt(1, 2, "ref")
    b.addi(9, 9, 1)
    b.blt(9, 10, "round")
    b.store(15, 7, 0x700)
    b.halt()
    return b.build()


def build_markov(scale=1, seed=0):
    """Markov-chain text-ish generation: table-driven state transitions
    with multiplicative congruential pseudo-randomness (the simulation
    workload class)."""
    states = 16
    b = ProgramBuilder("markov")
    rng = random.Random(seed + 16)
    table = _HEAP + 0xF0000
    for i in range(states * 2):
        b.data(table + 8 * i, rng.randrange(states))
    b.reg(15, 0x8000)
    b.movi(1, 1)              # prng state
    b.movi(2, 0)              # chain state
    b.movi(9, 0)
    b.movi(10, 60 * scale)
    b.label("step")
    b.movi(3, 1103515245)
    b.mul(1, 1, 3)
    b.addi(1, 1, 12345)
    b.andi(1, 1, (1 << 30) - 1)
    b.shr(4, 1, 16)
    b.andi(4, 4, 1)           # random branch direction
    b.shl(5, 2, 4)            # state * 16
    b.shr(5, 5, 3)            # = state * 2 (word index)
    b.add(5, 5, 4)
    b.shl(5, 5, 3)
    b.addi(5, 5, table)
    b.load(2, 5, 0)           # next state
    b.addi(9, 9, 1)
    b.blt(9, 10, "step")
    b.store(15, 2, 0x800)
    b.halt()
    return b.build()


def build_strgrep(scale=1, seed=0):
    """Substring scanning: nested compare loops with early exits (the
    text-processing class, like the Ethernet/network parsing workloads)."""
    hay = 64
    b = ProgramBuilder("strgrep")
    rng = random.Random(seed + 17)
    text = _HEAP + 0x100000
    needle = _HEAP + 0x108000
    for i in range(hay):
        b.data(text + 8 * i, rng.randrange(4))
    for i in range(3):
        b.data(needle + 8 * i, rng.randrange(4))
    b.reg(15, 0x8000)
    b.movi(7, 0)              # match count
    b.movi(9, 0)
    b.movi(10, 2 * scale)
    b.label("round")
    b.movi(1, 0)
    b.movi(2, hay - 3)
    b.label("pos")
    b.movi(5, 0)              # needle index
    b.movi(11, 3)
    b.label("cmp")
    b.add(3, 1, 5)
    b.shl(3, 3, 3)
    b.addi(3, 3, text)
    b.load(4, 3, 0)
    b.shl(6, 5, 3)
    b.addi(6, 6, needle)
    b.load(8, 6, 0)
    b.bne(4, 8, "mismatch")
    b.addi(5, 5, 1)
    b.blt(5, 11, "cmp")
    b.addi(7, 7, 1)           # full match
    b.label("mismatch")
    b.addi(1, 1, 1)
    b.blt(1, 2, "pos")
    b.addi(9, 9, 1)
    b.blt(9, 10, "round")
    b.store(15, 7, 0x900)
    b.halt()
    return b.build()


#: name -> builder for all benign kernels
WORKLOAD_BUILDERS = {
    "stream": build_stream,
    "fft": build_fft,
    "dijkstra": build_dijkstra,
    "hashjoin": build_hashjoin,
    "stencil": build_stencil,
    "bfs": build_bfs,
    "lrusim": build_lrusim,
    "markov": build_markov,
    "strgrep": build_strgrep,
    "pointer-chase": build_pointer_chase,
    "matmul": build_matmul,
    "sort": build_sort,
    "astar": build_astar,
    "compress": build_compress,
    "genematch": build_genematch,
    "eventsim": build_eventsim,
    "crypto": build_crypto,
    "phased": build_phased,
    "callgraph": build_callgraph,
}


def all_workloads(scale=1, seeds=(0,)):
    """Instantiate every benign kernel for each seed."""
    return [Workload(name, builder, scale=scale, seed=seed)
            for name, builder in WORKLOAD_BUILDERS.items()
            for seed in seeds]
