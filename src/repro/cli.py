"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``attack <name>``      run one attack on the simulator and report the leak
``attacks``            run the whole corpus (one line per attack)
``workloads``          run the benign suite and report IPCs
``collect <out>``      build and save a labelled trace corpus
``train <corpus>``     vaccinate a detector on a saved corpus
``adaptive``           train then demo the adaptive architecture
``explain <detector>``  interpret a trained detector
``report <corpus> <detector>``  markdown system report
``campaign <dir>``     fault-isolated parallel evaluation-matrix run
``arena <dir>``        closed-loop adversarial arms race
``serve``              multi-tenant batched streaming inference

Every command accepts the observability options (``--log-file``,
``--log-level``, ``--metrics-out``, ``--manifest-out``/``--no-manifest``,
``--profile``); ``collect``/``train``/``report``/``explain`` write a run
manifest by default, next to their primary artifact.  See
``docs/observability.md``.
"""

import argparse
import sys

from repro.obs import time_block


def _die2(message):
    """Print a one-line error and exit with status 2 (bad input file)."""
    print(message, file=sys.stderr)
    raise SystemExit(2)


def _load_corpus_or_die(path):
    """Load a saved corpus, or exit 2 with a one-line message naming the
    file instead of a traceback."""
    from repro.data import DatasetError, load_dataset
    try:
        return load_dataset(path)
    except (DatasetError, OSError) as exc:
        _die2(f"error: cannot load corpus {path}: {exc}")


def _load_detector_or_die(path):
    """Load a saved detector, or exit 2 with a one-line message.

    ``load_detector`` verifies the artifact end to end (checksum,
    schema fingerprint, dimensions, finiteness) and raises a typed
    :class:`ModelError`; here every failure becomes one stderr line.
    """
    from repro.core.patching import ModelError, load_detector
    try:
        return load_detector(path)
    except ModelError as exc:
        _die2(f"error: cannot load detector {path}: {exc}")
    except FileNotFoundError:
        _die2(f"error: cannot load detector {path}: file not found")
    except (ValueError, KeyError, OSError) as exc:
        _die2(f"error: cannot load detector {path}: {exc}")


def _cmd_attack(args):
    from repro.attacks import ATTACKS_BY_NAME
    from repro.sim import SimConfig
    from repro.sim.config import DefenseMode

    cls = ATTACKS_BY_NAME.get(args.name)
    if cls is None:
        sys.exit(f"unknown attack {args.name!r}; "
                 f"choose from {sorted(ATTACKS_BY_NAME)}")
    config = SimConfig(defense=DefenseMode(args.defense))
    outcome = cls(seed=args.seed).run(config=config)
    print(f"attack      : {outcome.name}")
    print(f"defense     : {args.defense}")
    print(f"expected    : {outcome.expected_bits}")
    print(f"recovered   : {outcome.recovered_bits}")
    print(f"leaked      : {outcome.leaked}")
    print(f"cycles      : {outcome.run.cycles}")
    print(f"committed   : {outcome.run.committed}")
    return 0 if outcome.leaked == (args.defense == "none") else 1


def _cmd_attacks(args):
    from repro.attacks import ALL_ATTACKS
    for cls in ALL_ATTACKS:
        outcome = cls(seed=args.seed).run()
        print(f"{outcome.name:18s} leak={outcome.leaked!s:5s} "
              f"rate={outcome.success_rate:.2f} "
              f"cycles={outcome.run.cycles}")
    return 0


def _cmd_workloads(args):
    from repro.defenses import run_workload
    from repro.sim import SimConfig
    from repro.workloads import all_workloads

    for w in all_workloads(scale=args.scale):
        result = run_workload(w, SimConfig())
        print(f"{w.name:14s} IPC={result.ipc:5.2f} "
              f"cycles={result.cycles:7d} committed={result.committed}")
    return 0


def _cmd_collect(args):
    from repro.attacks import ALL_ATTACKS
    from repro.data import build_dataset, save_dataset
    from repro.data.parallel import build_dataset_resilient
    from repro.runtime import CheckpointError, CoverageError
    from repro.workloads import all_workloads

    attacks = [cls(seed=s) for cls in ALL_ATTACKS
               for s in range(1, args.seeds + 1)]
    workloads = all_workloads(scale=args.scale,
                              seeds=tuple(range(args.seeds)))
    sim_config = None
    if args.memoize:
        from repro.sim import SimConfig
        sim_config = SimConfig(memoize=True)
    with time_block("stage.collect.build"):
        if args.jobs == 1:
            dataset = build_dataset(attacks, workloads, config=sim_config,
                                    sample_period=args.period,
                                    tenancy=args.tenancy)
        else:
            shard_dir = args.checkpoint_dir or (args.out + ".shards")
            try:
                dataset, report = build_dataset_resilient(
                    attacks, workloads, config=sim_config,
                    sample_period=args.period,
                    processes=args.jobs, retries=args.retries,
                    task_timeout=args.task_timeout, checkpoint_dir=shard_dir,
                    resume=args.resume, min_coverage=args.min_coverage,
                    tenancy=args.tenancy)
            except CheckpointError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            except CoverageError as exc:
                if exc.report is not None:
                    print(exc.report.summary(), file=sys.stderr)
                print(f"error: {exc}", file=sys.stderr)
                return 1
            if report.failures or report.skipped:
                print(report.summary())
    with time_block("stage.collect.save"):
        save_dataset(dataset, args.out)
    attack_n, benign_n = dataset.balance_counts()
    print(f"saved {len(dataset)} windows ({attack_n} attack / "
          f"{benign_n} benign) to {args.out}")
    return 0


def _cmd_train(args):
    from repro.core import vaccinate
    from repro.core.patching import save_detector
    from repro.ml.resilience import (
        TrainingCheckpointer, TrainingDivergedError, TrainingGuard,
    )
    from repro.runtime import CheckpointError

    with time_block("stage.train.load"):
        dataset = _load_corpus_or_die(args.corpus)
    guard = TrainingGuard(policy=args.guard_policy)
    ckpt_dir = args.checkpoint_dir or \
        ((args.out or args.corpus) + ".train-ckpt")
    checkpointer = None
    if args.checkpoint_every > 0:
        # context pins what determines the training trajectory (corpus,
        # seed) — not the iteration target, so a finished run can be
        # legally resumed with a higher --iterations to train further
        try:
            checkpointer = TrainingCheckpointer(
                ckpt_dir,
                context={"corpus": args.corpus, "seed": args.seed},
                interval=args.checkpoint_every, resume=args.resume)
        except CheckpointError as exc:
            _die2(f"error: cannot use training checkpoints in "
                  f"{ckpt_dir}: {exc}")
    with time_block("stage.train.vaccinate"):
        try:
            result = vaccinate(dataset, gan_iterations=args.iterations,
                               seed=args.seed, guard=guard,
                               checkpointer=checkpointer)
        except TrainingDivergedError as exc:
            _die2(f"error: training diverged and could not recover: {exc}")
        except CheckpointError as exc:
            _die2(f"error: cannot use training checkpoints in "
                  f"{ckpt_dir}: {exc}")
    with time_block("stage.train.evaluate"):
        scores = result.detector.evaluate(dataset.raw_matrix(result.schema),
                                          dataset.labels())
    print(f"accuracy={scores['accuracy']:.4f} auc={scores['auc']:.4f} "
          f"fp={scores['fp_rate']:.4f} fn={scores['fn_rate']:.4f}")
    print("engineered HPCs:")
    for name, counters in result.engineered:
        print(f"  {' AND '.join(counters)}")
    if args.out:
        with time_block("stage.train.save"):
            save_detector(result.detector, args.out)
        print(f"detector saved to {args.out}")
    return 0


def _cmd_adaptive(args):
    from repro.attacks import ALL_ATTACKS, ATTACKS_BY_NAME, default_secret_bits
    from repro.core import AdaptiveArchitecture, vaccinate
    from repro.data import build_dataset
    from repro.sim.config import DefenseMode
    from repro.workloads import all_workloads

    if args.detector:
        with time_block("stage.adaptive.load"):
            detector = _load_detector_or_die(args.detector)
    else:
        print("training...")
        with time_block("stage.adaptive.train"):
            attacks = [cls(seed=s) for cls in ALL_ATTACKS for s in (1, 2)]
            dataset = build_dataset(attacks,
                                    all_workloads(scale=4, seeds=(0, 1)),
                                    sample_period=100)
            evax = vaccinate(dataset, gan_iterations=args.iterations,
                             seed=args.seed)
        detector = evax.detector
    arch = AdaptiveArchitecture(detector,
                                secure_mode=DefenseMode(args.defense),
                                secure_window=args.window,
                                sample_period=100,
                                fail_secure=not args.no_fail_secure)
    names = args.attacks or ["spectre-pht", "meltdown", "lvi"]
    with time_block("stage.adaptive.run"):
        for name in names:
            attack = ATTACKS_BY_NAME[name](
                secret_bits=default_secret_bits(9, n=10), seed=9)
            run, leaked = arch.run_attack(attack)
            latch = " LATCHED" if run.latched else ""
            print(f"{name:18s} flags={run.flags:3d} "
                  f"secure={run.secure_fraction:4.0%} "
                  f"leaked={leaked}{latch}")
    return 0


def _cmd_explain(args):
    from repro.core import explain_window, weight_report

    with time_block("stage.explain.load"):
        detector = _load_detector_or_die(args.detector)
    with time_block("stage.explain.weights"):
        malicious, benign = weight_report(detector, top=args.top)
    print("most malicious-leaning features:")
    for name, weight in malicious:
        print(f"  {weight:+8.3f}  {name}")
    print("most benign-leaning features:")
    for name, weight in benign:
        print(f"  {weight:+8.3f}  {name}")
    if args.corpus:
        with time_block("stage.explain.load"):
            dataset = _load_corpus_or_die(args.corpus)
        with time_block("stage.explain.windows"):
            flagged = [r for r in dataset.records
                       if r.label == 1][: args.top]
            for record in flagged[:3]:
                score, contributions = explain_window(detector,
                                                      record.deltas)
                tops = ", ".join(f"{n}={v:.2f}"
                                 for n, v in contributions[:4])
                print(f"window from {record.source}: "
                      f"score={score:.3f} [{tops}]")
    return 0


def _cmd_report(args):
    from repro.analysis import markdown_report
    from repro.runtime.atomic import atomic_write_bytes

    with time_block("stage.report.load"):
        dataset = _load_corpus_or_die(args.corpus)
        detector = _load_detector_or_die(args.detector)
    with time_block("stage.report.render"):
        text = markdown_report(dataset, detector)
    if args.out:
        atomic_write_bytes(args.out, text.encode("utf-8"))
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


def _cmd_campaign(args):
    from repro.campaign import (
        CampaignSpec, CampaignSpecError, default_spec, run_campaign,
        run_smoke,
    )
    from repro.runtime import CampaignError

    if args.smoke:
        with time_block("stage.campaign.run"):
            return run_smoke(jobs=args.jobs)
    if not args.dir:
        _die2("error: campaign directory required (or use --smoke)")
    try:
        if args.spec:
            spec = CampaignSpec.from_json_file(args.spec)
        else:
            overrides = {}
            if args.workloads is not None:
                overrides["workloads"] = tuple(args.workloads)
            if args.attacks is not None:
                overrides["attacks"] = tuple(args.attacks)
            if args.defenses is not None:
                overrides["defenses"] = tuple(args.defenses)
            if args.periods is not None:
                overrides["periods"] = tuple(args.periods)
            if args.cell_seeds is not None:
                overrides["seeds"] = tuple(args.cell_seeds)
            if args.tenancies is not None:
                overrides["tenancies"] = tuple(args.tenancies)
            if args.scale is not None:
                overrides["scale"] = args.scale
            if args.max_cycles is not None:
                overrides["max_cycles"] = args.max_cycles
            spec = default_spec(**overrides)
    except CampaignSpecError as exc:
        _die2(f"error: {exc}")
    with time_block("stage.campaign.run"):
        try:
            result = run_campaign(
                spec, args.dir, processes=args.jobs, retries=args.retries,
                task_timeout=args.task_timeout or None, resume=args.resume)
        except CampaignError as exc:
            _die2(f"error: {exc}")
    print(result.summary())
    print(f"aggregate: {result.aggregate_path}")
    print(f"manifest : {result.manifest_path}")
    return result.exit_code


def _cmd_arena(args):
    from repro.arena import ArenaSpec, run_arena, run_smoke
    from repro.core.patching import ModelSchemaError
    from repro.runtime import ArenaError, CheckpointError

    if args.smoke:
        with time_block("stage.arena.run"):
            return run_smoke(jobs=args.jobs)
    if not args.dir:
        _die2("error: arena directory required (or use --smoke)")
    overrides = {}
    if args.attacks is not None:
        overrides["attacks"] = tuple(args.attacks)
    if args.workloads is not None:
        overrides["workloads"] = tuple(args.workloads)
    spec = ArenaSpec(
        generations=args.generations, population=args.population,
        survivors=args.survivors, sample_period=args.period,
        gan_iterations=args.iterations, fp_budget=args.fp_budget,
        fn_budget=args.fn_budget, seed=args.seed, **overrides)
    initial = None
    if args.detector:
        initial = _load_detector_or_die(args.detector)
    eval_corpus = None
    if args.eval_corpus:
        eval_corpus = _load_corpus_or_die(args.eval_corpus)
    with time_block("stage.arena.run"):
        try:
            result = run_arena(
                spec, args.dir, processes=args.jobs,
                retries=args.retries,
                task_timeout=args.task_timeout or None,
                resume=args.resume, guard_policy=args.guard_policy,
                initial_detector=initial, eval_corpus=eval_corpus)
        except (ArenaError, CheckpointError) as exc:
            _die2(f"error: {exc}")
        except ModelSchemaError as exc:
            _die2(f"error: detector/corpus schema mismatch: {exc}")
    print(result.summary())
    print(f"report   : {result.directory}/arena.md")
    print(f"manifest : {result.directory}/arena.json")
    print(f"detector : {result.directory}/detector.json")
    return result.exit_code


def _cmd_serve(args):
    import json

    from repro.runtime.atomic import atomic_write_bytes
    from repro.serve import (
        ServeConfig, demo_detector, run_bench, run_serve,
        streams_from_dataset, synthetic_streams,
    )
    from repro.sim.config import DefenseMode

    if args.smoke:
        from repro.serve import run_smoke
        with time_block("stage.serve.run"):
            return run_smoke()
    if args.bench:
        with time_block("stage.serve.run"):
            run_bench()
        return 0
    with time_block("stage.serve.load"):
        if args.detector:
            detector = _load_detector_or_die(args.detector)
        else:
            detector = demo_detector(seed=args.seed)
        if args.corpus:
            dataset = _load_corpus_or_die(args.corpus)
            streams = streams_from_dataset(dataset, args.tenants,
                                           period=args.period)
        else:
            streams = synthetic_streams(args.tenants, seed=args.seed,
                                        period=args.period)
    config = ServeConfig(duration=args.duration,
                         batch_window=args.batch_window,
                         queue_limit=args.queue_limit,
                         secure_mode=DefenseMode(args.defense),
                         secure_window=args.secure_window)
    with time_block("stage.serve.run"):
        _, report = run_serve(detector, streams, config)
    with time_block("stage.serve.report"):
        if args.out:
            payload = json.dumps(report, indent=2, sort_keys=True) + "\n"
            atomic_write_bytes(args.out, payload.encode("utf-8"))
    w = report["windows"]
    lat = report["latency_ms"]
    thr = report["throughput"]
    print(f"tenants={len(streams)} ingested={w['ingested']} "
          f"scored={w['scored']} shed={w['shed']} "
          f"batches={report['batches']['count']} "
          f"(max {report['batches']['max_windows']})")
    print(f"latency p50={lat['p50']:.3f}ms p95={lat['p95']:.3f}ms "
          f"p99={lat['p99']:.3f}ms  throughput="
          f"{thr['windows_per_sec']:,.0f} windows/s")
    if report["latched"]:
        print(f"latched tenants: {', '.join(report['latched'])}")
    if args.out:
        print(f"report written to {args.out}")
    return 0


def _obs_parent():
    """Observability options shared by every subcommand."""
    parent = argparse.ArgumentParser(add_help=False)
    g = parent.add_argument_group("observability")
    g.add_argument("--log-file", default=None, metavar="JSONL",
                   help="append structured JSONL events to this file")
    g.add_argument("--log-level", default="info",
                   choices=["debug", "info", "warn", "error"],
                   help="drop events below this level (default info)")
    g.add_argument("--metrics-out", default=None, metavar="JSON",
                   help="write the final metrics snapshot to this file")
    g.add_argument("--manifest-out", default=None, metavar="JSON",
                   help="run-manifest path (default: next to the "
                        "command's primary artifact)")
    g.add_argument("--no-manifest", action="store_true",
                   help="skip writing the run manifest")
    g.add_argument("--profile", default=None, metavar="PSTATS",
                   help="profile the command with cProfile and dump "
                        "stats to this file")
    return parent


def build_parser():
    """Construct the argparse CLI (one sub-parser per command)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="EVAX reproduction command line")
    obs = _obs_parent()
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("attack", help="run one attack", parents=[obs])
    p.add_argument("name")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--defense", default="none",
                   choices=[m.value for m in __import__(
                       "repro.sim.config", fromlist=["DefenseMode"]
                   ).DefenseMode])
    p.set_defaults(func=_cmd_attack)

    p = sub.add_parser("attacks", help="run the whole corpus",
                       parents=[obs])
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(func=_cmd_attacks)

    p = sub.add_parser("workloads", help="run the benign suite",
                       parents=[obs])
    p.add_argument("--scale", type=int, default=3)
    p.set_defaults(func=_cmd_workloads)

    p = sub.add_parser("collect", help="build + save a trace corpus",
                       parents=[obs])
    p.add_argument("out")
    p.add_argument("--seeds", type=int, default=2)
    p.add_argument("--scale", type=int, default=4)
    p.add_argument("--period", type=int, default=100)
    p.add_argument("--tenancy", default="single",
                   choices=["single", "smt"],
                   help="run each source alone or under SMT co-tenant "
                        "interference noise")
    p.add_argument("--memoize", action="store_true",
                   help="enable hot-trace memoization: repeated "
                        "identical runs replay recorded traces "
                        "(bit-identical; see docs/simulator.md)")
    p.add_argument("--jobs", type=int, default=None,
                   help="parallel collection processes (1 = sequential)")
    p.add_argument("--resume", action="store_true",
                   help="skip sources already completed in the "
                        "checkpoint shards and re-simulate only the rest")
    p.add_argument("--retries", type=int, default=2,
                   help="re-attempts per failed source (default 2)")
    p.add_argument("--task-timeout", type=float, default=300.0,
                   help="per-source wall-clock limit in seconds "
                        "(0 = unlimited)")
    p.add_argument("--min-coverage", type=float, default=0.9,
                   help="fail the build when fewer than this fraction "
                        "of sources survive (default 0.9)")
    p.add_argument("--checkpoint-dir", default=None,
                   help="shard/manifest directory "
                        "(default: <out>.shards)")
    p.set_defaults(func=_cmd_collect)

    p = sub.add_parser("report", help="markdown report for corpus+detector",
                       parents=[obs])
    p.add_argument("corpus")
    p.add_argument("detector")
    p.add_argument("--out", default=None)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("train", help="vaccinate on a saved corpus",
                       parents=[obs])
    p.add_argument("corpus")
    p.add_argument("--out", default=None)
    p.add_argument("--iterations", type=int, default=1200)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--resume", action="store_true",
                   help="resume GAN training from the latest checkpoint "
                        "(bit-exact vs an uninterrupted run)")
    p.add_argument("--checkpoint-dir", default=None,
                   help="training checkpoint directory "
                        "(default: <out|corpus>.train-ckpt)")
    p.add_argument("--checkpoint-every", type=int, default=200,
                   help="GAN iterations between checkpoints "
                        "(0 disables checkpointing; default 200)")
    p.add_argument("--guard-policy", default="rollback",
                   choices=["rollback", "clip", "raise"],
                   help="TrainingGuard reaction to NaN/spike/divergence "
                        "(default rollback)")
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("adaptive", help="adaptive architecture demo",
                       parents=[obs])
    p.add_argument("--attacks", nargs="*", default=None)
    p.add_argument("--defense", default="fence-futuristic")
    p.add_argument("--window", type=int, default=10_000)
    p.add_argument("--iterations", type=int, default=1200)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--detector", default=None, metavar="JSON",
                   help="use a saved detector artifact instead of "
                        "training one in-process")
    p.add_argument("--no-fail-secure", action="store_true",
                   help="propagate detector faults instead of latching "
                        "always-secure mode (debugging only)")
    p.set_defaults(func=_cmd_adaptive)

    p = sub.add_parser(
        "campaign", parents=[obs],
        help="fault-isolated parallel evaluation-matrix run",
        description="Expand a {workload x attack x defense x "
                    "sampling-period} matrix, fan it out over isolated "
                    "workers with a content-addressed result cache, and "
                    "aggregate incrementally.  Exit 0 = clean, 1 = "
                    "completed with holes, 2 = fatal.  See "
                    "docs/campaigns.md.")
    p.add_argument("dir", nargs="?", default=None,
                   help="campaign directory (cache + aggregate.md + "
                        "campaign.json)")
    p.add_argument("--spec", default=None, metavar="JSON",
                   help="matrix spec file (overrides the axis flags)")
    p.add_argument("--workloads", nargs="*", default=None,
                   help="workload names (default: all)")
    p.add_argument("--attacks", nargs="*", default=None,
                   help="attack names (default: all)")
    p.add_argument("--defenses", nargs="*", default=None,
                   help="defense modes (default: none)")
    p.add_argument("--periods", nargs="*", type=int, default=None,
                   help="sampling periods (default: 100)")
    p.add_argument("--cell-seeds", nargs="*", type=int, default=None,
                   help="per-source seeds (default: 0)")
    p.add_argument("--tenancies", nargs="*", default=None,
                   choices=["single", "smt"],
                   help="tenancy axis: single and/or smt co-tenant "
                        "noise (default: single)")
    p.add_argument("--scale", type=int, default=None,
                   help="workload scale factor (default 2)")
    p.add_argument("--max-cycles", type=int, default=None,
                   help="cap each cell's simulated cycles")
    p.add_argument("--jobs", type=int, default=None,
                   help="parallel cell workers (default: CPU count)")
    p.add_argument("--retries", type=int, default=1,
                   help="re-attempts per failed cell (default 1)")
    p.add_argument("--task-timeout", type=float, default=600.0,
                   help="per-cell wall-clock limit in seconds "
                        "(0 = unlimited)")
    p.add_argument("--resume", action="store_true",
                   help="replay verified cache entries and re-run only "
                        "incomplete/corrupt cells (bit-identical "
                        "aggregate)")
    p.add_argument("--smoke", action="store_true",
                   help="run the CI resumability check (chaos kill + "
                        "corruption, resume, bit-identity) and exit")
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser(
        "arena", parents=[obs],
        help="closed-loop adversarial arms race",
        description="Evolve a fuzzed attack population against the "
                    "current detector, re-vaccinate on the survivors, "
                    "and promote candidates only past a held-out "
                    "regression gate; every generation checkpoints for "
                    "bit-exact --resume.  Exit 0 = clean, 1 = completed "
                    "with holes, 2 = fatal.  See docs/arena.md.")
    p.add_argument("dir", nargs="?", default=None,
                   help="arena directory (checkpoints + arena.md + "
                        "arena.json + detector.json)")
    p.add_argument("--generations", type=int, default=3,
                   help="arms-race rounds after generation 0 "
                        "(default 3)")
    p.add_argument("--population", type=int, default=9,
                   help="genomes per generation (default 9)")
    p.add_argument("--survivors", type=int, default=3,
                   help="breeding-pool size (default 3)")
    p.add_argument("--attacks", nargs="*", default=None,
                   help="canonical-attack fold names (default: "
                        "meltdown flush-reload)")
    p.add_argument("--workloads", nargs="*", default=None,
                   help="benign fold names (default: stream sort)")
    p.add_argument("--period", type=int, default=150,
                   help="sampling period (default 150)")
    p.add_argument("--iterations", type=int, default=40,
                   help="GAN iterations per re-vaccination (default 40)")
    p.add_argument("--fp-budget", type=float, default=0.02,
                   help="held-out false-positive-rate regression "
                        "budget (default 0.02)")
    p.add_argument("--fn-budget", type=float, default=0.05,
                   help="held-out false-negative-rate regression "
                        "budget (default 0.05)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--detector", default=None, metavar="JSON",
                   help="seed the race from a saved detector artifact "
                        "instead of vaccinating generation 0 in-process")
    p.add_argument("--eval-corpus", default=None, metavar="NPZ",
                   help="held-out gate corpus from disk (its counter-"
                        "layout fingerprint must match the detector's; "
                        "default: rebuilt from the spec's eval seeds)")
    p.add_argument("--guard-policy", default="rollback",
                   choices=["rollback", "clip", "raise"],
                   help="TrainingGuard reaction during re-vaccination "
                        "(default rollback)")
    p.add_argument("--jobs", type=int, default=None,
                   help="parallel evaluation workers (default: CPU "
                        "count)")
    p.add_argument("--retries", type=int, default=1,
                   help="re-attempts per crashed genome evaluation "
                        "(default 1)")
    p.add_argument("--task-timeout", type=float, default=600.0,
                   help="per-genome wall-clock limit in seconds "
                        "(0 = unlimited)")
    p.add_argument("--resume", action="store_true",
                   help="restore the latest valid generation checkpoint "
                        "and replay the rest (bit-identical report)")
    p.add_argument("--smoke", action="store_true",
                   help="run the CI arms-race drill (kill + resume "
                        "bit-identity, gate rollback) and exit")
    p.set_defaults(func=_cmd_arena)

    p = sub.add_parser(
        "serve", parents=[obs],
        help="multi-tenant batched streaming inference",
        description="Stream HPC windows from many simulated tenants "
                    "through the batched detector (thousands of windows "
                    "per matrix-matrix pass) with one fail-secure "
                    "secure-mode controller per tenant and a bounded, "
                    "shed-to-secure ingest queue.  See docs/serving.md.")
    p.add_argument("--tenants", type=int, default=8,
                   help="simulated tenant streams (default 8)")
    p.add_argument("--duration", type=int, default=200,
                   help="ticks to drive; each tenant emits one window "
                        "per tick unless chaos says otherwise "
                        "(default 200)")
    p.add_argument("--batch-window", type=int, default=1024,
                   help="max windows coalesced per score_batch call "
                        "(default 1024)")
    p.add_argument("--queue-limit", type=int, default=8192,
                   help="bounded ingest queue; overflow sheds windows "
                        "into secure mode (default 8192)")
    p.add_argument("--period", type=int, default=100,
                   help="sampling period the streams emulate "
                        "(default 100)")
    p.add_argument("--defense", default="fence-futuristic",
                   help="secure mode entered on a flag "
                        "(default fence-futuristic)")
    p.add_argument("--secure-window", type=int, default=10_000,
                   help="committed instructions per secure-mode re-arm "
                        "(default 10000)")
    p.add_argument("--detector", default=None, metavar="JSON",
                   help="saved detector artifact (default: a quick-fit "
                        "demo detector)")
    p.add_argument("--corpus", default=None, metavar="JSON",
                   help="replay windows from this saved corpus instead "
                        "of synthetic streams")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None, metavar="JSON",
                   help="write the run report (and the run manifest "
                        "next to it)")
    p.add_argument("--bench", action="store_true",
                   help="measure batched vs per-window scoring "
                        "throughput and exit")
    p.add_argument("--smoke", action="store_true",
                   help="run the CI serving check (equivalence, kernel "
                        "floors, end-to-end CLI run) and exit")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("explain", help="interpret a trained detector",
                       parents=[obs])
    p.add_argument("detector")
    p.add_argument("--corpus", default=None)
    p.add_argument("--top", type=int, default=8)
    p.set_defaults(func=_cmd_explain)
    return parser


def main(argv=None):
    """CLI entry point; returns the command's exit status.

    Every command runs inside a :class:`repro.obs.context.RunContext`,
    which configures logging/profiling on entry and — on success *and*
    failure — snapshots metrics and writes the run manifest on exit.
    """
    from repro.obs.context import RunContext

    args = build_parser().parse_args(argv)
    ctx = RunContext(args, argv=argv if argv is not None else sys.argv[1:])
    with ctx:
        code = args.func(args)
        ctx.exit_code = code if isinstance(code, int) else 0
    return code


if __name__ == "__main__":
    sys.exit(main())
