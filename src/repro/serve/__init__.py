"""Detection-as-a-service: batched streaming inference over many tenants.

``repro serve`` drives this package: HPC window streams from many
simulated tenants (corpus replay or synthetic) are coalesced into
matrix-matrix batches — thousands of windows per ``dot`` through the
batch-size-invariant :meth:`~repro.core.perceptron.HardwareDetector.
score_batch` path — while the *decision* stays per tenant: one genuine
fail-secure :class:`~repro.defenses.controller.SecureModeController`
per stream (:mod:`repro.defenses.fanout`).

Contracts the tests pin down:

* **equivalence** — a window's score is bit-identical whether it is
  scored alone or inside any batch (``tests/serve/
  test_score_equivalence.py``);
* **isolation** — a poisoned window, non-finite score, or detector
  exception latches only the offending tenant; sibling verdict streams
  stay bit-identical to a run where the faulty tenant never existed
  (``tests/serve/test_tenant_isolation.py``);
* **backpressure fails secure** — the queue is bounded; overflow sheds
  windows *into* secure mode, never past the detector unmonitored.

See ``docs/serving.md`` for the operator view (metrics, events,
triage).
"""

from repro.serve.bench import measure_scoring_throughput, run_bench
from repro.serve.service import DetectionService, ServeConfig, run_serve
from repro.serve.smoke import run_smoke
from repro.serve.streams import (
    ReplayStream, SyntheticStream, demo_detector, streams_from_dataset,
    synthetic_streams,
)

__all__ = [
    "DetectionService",
    "ReplayStream",
    "ServeConfig",
    "SyntheticStream",
    "demo_detector",
    "measure_scoring_throughput",
    "run_bench",
    "run_serve",
    "run_smoke",
    "streams_from_dataset",
    "synthetic_streams",
]
