"""The streaming detection service: batch, score, decide, observe.

:class:`DetectionService` owns the bounded ingest queue, the batched
scoring path and the per-tenant controller fan-out;
:func:`run_serve` is the deterministic tick-loop driver the CLI and
tests share.

Design rules, in order:

1. **Batch the math, not the decision.**  Scoring is one
   ``score_batch`` call over every queued window (thousands of rows per
   matrix-matrix pass); the flag/secure-window/latch decision then runs
   per window through each tenant's own fail-secure
   :class:`~repro.defenses.controller.SecureModeController`.
2. **Faults land on their tenant.**  A non-finite input window, a
   non-finite score, or a detector exception is attributed to the
   offending window's tenant and latches *that* controller; a
   batch-level detector exception triggers a per-window re-score so
   sibling windows in the same batch still get their (bit-identical)
   scores.
3. **Backpressure fails secure.**  The queue is bounded
   (``queue_limit``); a window that cannot be queued is *shed* —
   counted, surfaced as a ``serve.shed`` event, and fed to its tenant's
   controller as a positive flag, so overload degrades to mitigated
   execution, never to unmonitored execution.
4. **Determinism where it matters.**  Arrivals, batching, scores,
   verdicts and shed decisions are pure functions of the streams,
   config and chaos plan; wall-clock enters only the latency/throughput
   *observability* (timers, percentile gauges), never the control flow.
"""

import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.defenses.fanout import ControllerFanout
from repro.obs import metrics, obs_event
from repro.sim.config import DefenseMode


@dataclass
class ServeConfig:
    """Service knobs (CLI flags map 1:1; see ``docs/serving.md``)."""

    duration: int = 200          # ticks to drive (one window/tenant/tick)
    batch_window: int = 1024     # max windows coalesced per score_batch
    queue_limit: int = 8192      # bounded ingest queue; overflow sheds
    secure_mode: DefenseMode = DefenseMode.FENCE_FUTURISTIC
    secure_window: int = 10_000  # controller re-arm window (instructions)

    def as_dict(self):
        return {
            "duration": self.duration,
            "batch_window": self.batch_window,
            "queue_limit": self.queue_limit,
            "secure_mode": self.secure_mode.value,
            "secure_window": self.secure_window,
        }


class LatencyReservoir:
    """Enqueue-to-verdict latencies with nearest-rank percentiles.

    Bounded (``cap`` samples) so a long-running service cannot grow
    memory without limit; overflow is counted, not silently dropped.
    """

    def __init__(self, cap=200_000):
        self.cap = cap
        self.samples = []
        self.overflow = 0

    def observe(self, seconds):
        if len(self.samples) < self.cap:
            self.samples.append(seconds)
        else:
            self.overflow += 1

    def percentile_ms(self, p):
        """Nearest-rank percentile, in milliseconds (0.0 when empty)."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(1, int(np.ceil(p / 100.0 * len(ordered))))
        return ordered[rank - 1] * 1000.0


@dataclass
class _Pending:
    """One queued window awaiting a batch slot."""

    tenant: str
    commit_index: int
    window: object
    enqueued_at: float = field(default=0.0)


class DetectionService:
    """Bounded-queue batched scoring with per-tenant fail-secure fan-out.

    ``record=True`` additionally keeps per-tenant ``(commit_index,
    score, flagged)`` tuples — the isolation tests compare these streams
    bit-for-bit across chaos scenarios.
    """

    def __init__(self, detector, config=None, chaos=None, record=False):
        self.config = config if config is not None else ServeConfig()
        self.chaos = chaos
        self.detector = chaos.wrap_detector(detector) if chaos else detector
        self.threshold = detector.threshold
        self.fanout = ControllerFanout(secure_mode=self.config.secure_mode,
                                       secure_window=self.config.secure_window)
        self.latency = LatencyReservoir()
        self.batch_sizes = {}
        self.queue_peak = 0
        self.record = {} if record else None
        self._queue = deque()
        self._latched_reported = set()
        # per-service totals: the global registry accumulates across
        # every service in the process, the report must not
        self.n_ingested = 0
        self.n_scored = 0
        self.n_shed = 0
        self.n_batches = 0
        self.n_faults = 0
        reg = metrics()
        self._m_ingested = reg.counter("serve.windows.ingested")
        self._m_scored = reg.counter("serve.windows.scored")
        self._m_shed = reg.counter("serve.windows.shed")
        self._m_batches = reg.counter("serve.batches")
        self._m_batch_s = reg.timer("serve.batch.seconds")
        self._m_faults = reg.counter("serve.detector.faults")

    # -- ingest ------------------------------------------------------------

    @property
    def pending(self):
        return len(self._queue)

    def submit(self, tenant, commit_index, window):
        """Queue one window, or shed it into secure mode on overflow."""
        if len(self._queue) >= self.config.queue_limit:
            self.n_shed += 1
            self._m_shed.inc()
            slot = self.fanout.slot(tenant)
            slot.shed_window(commit_index)
            obs_event("serve.shed", level="warn", tenant=tenant,
                      commit_index=commit_index, depth=len(self._queue))
            self._note_latch(slot)
            return False
        self._queue.append(_Pending(tenant, commit_index, window,
                                    time.perf_counter()))
        self.n_ingested += 1
        self._m_ingested.inc()
        if len(self._queue) > self.queue_peak:
            self.queue_peak = len(self._queue)
        return True

    # -- scoring -----------------------------------------------------------

    def _score(self, X):
        """Score a batch; on a batch-level detector exception, fall back
        to per-window scoring so the fault is attributed to the row that
        caused it (rows are bit-identical either way — the scoring
        pipeline is batch-size-invariant per row)."""
        faults = [None] * len(X)
        try:
            return self.detector.score_batch(X), faults
        # the whole point of the fallback: ANY detector blow-up must be
        # narrowed to its row, not fail the sibling windows in the batch
        # (the inner per-row handler attributes every fault via
        # faults[i] and callers latch on it; the flow pass can't see
        # across the loop boundary, hence the fail-secure suppression)
        # repro-lint: disable=broad-except,fail-secure-flow -- per-row fallback
        except Exception:
            scores = np.empty(len(X))
            for i in range(len(X)):
                try:
                    scores[i] = self.detector.score_batch(X[i:i + 1])[0]
                except Exception as exc:  # repro-lint: disable=broad-except
                    scores[i] = float("nan")
                    faults[i] = exc
            return scores, faults

    def _note_latch(self, slot):
        if slot.latched and slot.tenant not in self._latched_reported:
            self._latched_reported.add(slot.tenant)
            metrics().inc("serve.tenants.latched")
            obs_event("serve.tenant_latched", level="error",
                      tenant=slot.tenant,
                      reason=slot.controller.latch_reason)

    def process_batch(self):
        """Coalesce up to ``batch_window`` queued windows into one
        matrix-matrix scoring pass and apply per-tenant decisions."""
        take = min(len(self._queue), self.config.batch_window)
        if not take:
            return 0
        items = [self._queue.popleft() for _ in range(take)]
        X = np.stack([item.window for item in items])
        finite = np.isfinite(X).all(axis=1)
        with self._m_batch_s.time():
            scores, faults = self._score(X)
        score_finite = np.isfinite(scores)
        flags = scores >= self.threshold
        now = time.perf_counter()
        for i, item in enumerate(items):
            fault = faults[i]
            if fault is None and not finite[i]:
                fault = ValueError(
                    "non-finite counter delta in sampling window")
            elif fault is None and not score_finite[i]:
                fault = ValueError(
                    f"non-finite detector score {scores[i]!r}")
            slot = self.fanout.slot(item.tenant)
            flagged = slot.apply(item.commit_index,
                                 bool(flags[i]) if fault is None else False,
                                 fault=fault)
            if fault is not None:
                self.n_faults += 1
                self._m_faults.inc()
                obs_event("serve.detector_fault", level="error",
                          tenant=item.tenant, kind=type(fault).__name__)
                self._note_latch(slot)
            if self.record is not None:
                self.record.setdefault(item.tenant, []).append(
                    (item.commit_index, float(scores[i]), bool(flagged)))
            self.latency.observe(now - item.enqueued_at)
        self.n_scored += take
        self._m_scored.inc(take)
        self.n_batches += 1
        self._m_batches.inc()
        self.batch_sizes[take] = self.batch_sizes.get(take, 0) + 1
        reg = metrics()
        reg.set_gauge("serve.queue.depth", len(self._queue))
        reg.set_gauge("serve.queue.peak", self.queue_peak)
        return take

    def drain(self):
        """Score everything still queued (end of stream)."""
        while self._queue:
            self.process_batch()

    # -- reporting ---------------------------------------------------------

    def report(self, elapsed_s=None):
        """Deterministically-ordered plain-dict run report (JSON-safe,
        modulo the wall-clock latency/throughput fields)."""
        reg = metrics()
        scored = self.n_scored
        p50 = self.latency.percentile_ms(50)
        p95 = self.latency.percentile_ms(95)
        p99 = self.latency.percentile_ms(99)
        reg.set_gauge("serve.latency.p50_ms", p50)
        reg.set_gauge("serve.latency.p95_ms", p95)
        reg.set_gauge("serve.latency.p99_ms", p99)
        reg.set_gauge("serve.tenants", len(self.fanout.slots))
        max_batch = max(self.batch_sizes, default=0)
        reg.set_gauge("serve.batch.max_windows", max_batch)
        report = {
            "schema": "repro.serve-report/1",
            "config": self.config.as_dict(),
            "windows": {
                "ingested": self.n_ingested,
                "scored": scored,
                "shed": self.n_shed,
            },
            "batches": {
                "count": self.n_batches,
                "max_windows": max_batch,
                "histogram": {str(size): self.batch_sizes[size]
                              for size in sorted(self.batch_sizes)},
            },
            "queue": {
                "peak": self.queue_peak,
                "limit": self.config.queue_limit,
            },
            "latency_ms": {
                "p50": p50, "p95": p95, "p99": p99,
                "samples": len(self.latency.samples),
                "overflow": self.latency.overflow,
            },
            "detector_faults": self.n_faults,
            "tenants": self.fanout.summary(),
            "latched": self.fanout.latched_tenants(),
        }
        if elapsed_s is not None:
            report["throughput"] = {
                "elapsed_s": elapsed_s,
                "windows_per_sec": scored / elapsed_s if elapsed_s else 0.0,
            }
        return report


def run_serve(detector, streams, config=None, chaos=None, record=False):
    """Drive ``streams`` through a :class:`DetectionService` for
    ``config.duration`` ticks; returns ``(service, report)``.

    Each tick, every stream emits its due windows (one by default;
    a chaos plan may stretch or burst arrivals), then full batches are
    scored as soon as they form; the final partial batch drains at end
    of stream.
    """
    config = config if config is not None else ServeConfig()
    service = DetectionService(detector, config, chaos=chaos, record=record)
    obs_event("serve.started", tenants=len(streams),
              duration=config.duration, batch_window=config.batch_window,
              queue_limit=config.queue_limit)
    start = time.perf_counter()
    for tick in range(config.duration):
        for stream in streams:
            emits = chaos.emit_count(stream.tenant, tick) if chaos else 1
            for _ in range(emits):
                commit_index, window = stream.next_window()
                if chaos:
                    window = chaos.poison(stream.tenant, tick, window)
                service.submit(stream.tenant, commit_index, window)
        while service.pending >= config.batch_window:
            service.process_batch()
    service.drain()
    elapsed = time.perf_counter() - start
    report = service.report(elapsed_s=elapsed)
    obs_event("serve.finished",
              ingested=report["windows"]["ingested"],
              scored=report["windows"]["scored"],
              shed=report["windows"]["shed"],
              latched=report["latched"])
    return service, report
