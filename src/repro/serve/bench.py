"""Serving throughput measurement: batched vs per-window scoring.

Shared by ``repro serve --bench``, the serve smoke check and
``scripts/bench_serve.py``: one helper that times the two code paths on
identical windows, so every consumer gates on the same numbers.

The comparison is the honest kernel ratio — ``score_batch`` over the
full matrix vs a ``score_window`` Python loop — because that is exactly
the work batching amortizes (schema gather, normalization and the
layer matmuls, once per *batch* instead of once per *window*).
"""

import time

import numpy as np

from repro.sim.hpc import COUNTER_NAMES


def synthetic_windows(n, seed=0, period=100):
    """A seeded ``(n, counters)`` float matrix of plausible deltas."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, period + 1,
                        size=(n, len(COUNTER_NAMES))).astype(float)


def measure_scoring_throughput(detector, windows=4096, single_windows=512,
                               repeats=3, seed=0):
    """Time both scoring paths on the same data; returns a dict.

    ``single_windows`` caps the per-window loop (it is the slow side —
    timing it on the full matrix would only make the bench slower, not
    more accurate); both sides report windows/sec from their best of
    ``repeats`` passes, the standard best-of timing that rejects
    scheduler noise.
    """
    X = synthetic_windows(windows, seed=seed)
    single_n = min(single_windows, windows)
    # warm both paths (allocator, caches) before timing
    detector.score_batch(X[:64])
    detector.score_window(X[0])

    best_batch = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        scores = detector.score_batch(X)
        best_batch = min(best_batch, time.perf_counter() - start)
    best_single = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for i in range(single_n):
            detector.score_window(X[i])
        best_single = min(best_single, time.perf_counter() - start)

    batch_wps = windows / best_batch
    single_wps = single_n / best_single
    return {
        "detector": detector.name,
        "windows": windows,
        "single_windows": single_n,
        "batch_seconds": best_batch,
        "single_seconds": best_single,
        "batch_windows_per_sec": batch_wps,
        "single_windows_per_sec": single_wps,
        "speedup": batch_wps / single_wps if single_wps else 0.0,
        "score_checksum": float(np.nansum(scores)),
    }


def run_bench(echo=print, windows=4096, repeats=3):
    """``repro serve --bench``: print the kernel ratio for the
    perceptron and a deep detector; returns the measurement dicts."""
    from repro.serve.streams import demo_detector

    results = []
    for depth in (0, 16):
        detector = demo_detector(seed=0, depth=depth)
        m = measure_scoring_throughput(detector, windows=windows,
                                       repeats=repeats)
        results.append(m)
        echo(f"{m['detector']:20s} batched={m['batch_windows_per_sec']:12,.0f}"
             f" w/s  single={m['single_windows_per_sec']:9,.0f} w/s  "
             f"speedup={m['speedup']:6.1f}x")
    return results
