"""The ``repro serve --smoke`` end-to-end check.

A self-contained, few-second proof of the serving contract, run by
``scripts/ci.sh`` on every push:

1. **equivalence** — a handful of windows score bit-identically through
   ``score_batch`` and the per-window path (the invariant everything
   else rests on);
2. **kernel floor** — the batched scoring path beats the per-window
   loop by at least :data:`SPEEDUP_FLOOR` and sustains at least
   :data:`BATCH_WPS_FLOOR` windows/sec (defensive fractions of the
   measured numbers — see ``benchmarks/BENCH_serve.json`` for the real
   ones — so a noisy CI host does not flake);
3. **the real CLI** — a subprocess ``python -m repro serve`` run exits
   0, writes its report JSON and its run manifest next to it, scores
   every emitted window, and sustains :data:`SERVICE_WPS_FLOOR`
   windows/sec end to end (queueing, controller fan-out and
   observability included).

Any deviation prints a one-line reason and fails (exit 1).
"""

import json
import os
import subprocess
import sys
import tempfile

import numpy as np

from repro.serve.bench import measure_scoring_throughput, synthetic_windows
from repro.serve.streams import demo_detector

#: batched/single kernel speedup the smoke requires (measured ~50x on
#: the perceptron; 10x leaves 5x headroom for loaded CI hosts)
SPEEDUP_FLOOR = 10.0
#: batched windows/sec the kernel must sustain (measured ~1.2M)
BATCH_WPS_FLOOR = 150_000.0
#: end-to-end service windows/sec, queueing + controllers included
SERVICE_WPS_FLOOR = 5_000.0


def _cli_env():
    """Subprocess env that can import ``repro`` the way we did."""
    import repro
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def run_smoke(echo=print):
    """Run the three-part serving check; returns 0 ok / 1 failed."""
    detector = demo_detector(seed=0)

    X = synthetic_windows(64, seed=7)
    batch = detector.score_batch(X)
    singles = np.array([detector.score_window(X[i]) for i in range(len(X))])
    if not np.array_equal(batch, singles):
        echo("serve smoke FAILED: batched scores are not bit-identical "
             "to per-window scores")
        return 1

    m = measure_scoring_throughput(detector, windows=4096, repeats=3)
    if m["speedup"] < SPEEDUP_FLOOR:
        echo(f"serve smoke FAILED: batched speedup {m['speedup']:.1f}x "
             f"below the {SPEEDUP_FLOOR:.0f}x floor")
        return 1
    if m["batch_windows_per_sec"] < BATCH_WPS_FLOOR:
        echo(f"serve smoke FAILED: batched throughput "
             f"{m['batch_windows_per_sec']:,.0f} w/s below the "
             f"{BATCH_WPS_FLOOR:,.0f} w/s floor")
        return 1

    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "serve-report.json")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--tenants", "4",
             "--duration", "64", "--batch-window", "64", "--out", out],
            env=_cli_env(), capture_output=True, text=True, timeout=300)
        if proc.returncode != 0:
            echo(f"serve smoke FAILED: CLI run exited {proc.returncode}: "
                 f"{proc.stderr.strip().splitlines()[-1:] or proc.stdout}")
            return 1
        if not os.path.exists(out):
            echo("serve smoke FAILED: CLI run wrote no report JSON")
            return 1
        manifest = out + ".serve-manifest.json"
        if not os.path.exists(manifest):
            echo("serve smoke FAILED: CLI run wrote no run manifest "
                 "next to its report")
            return 1
        with open(out) as f:
            report = json.load(f)
        expected = 4 * 64
        if report["windows"]["scored"] != expected \
                or report["windows"]["shed"] != 0:
            echo(f"serve smoke FAILED: CLI run scored "
                 f"{report['windows']['scored']}/{expected} windows "
                 f"(shed {report['windows']['shed']})")
            return 1
        wps = report.get("throughput", {}).get("windows_per_sec", 0.0)
        if wps < SERVICE_WPS_FLOOR:
            echo(f"serve smoke FAILED: end-to-end throughput {wps:,.0f} "
                 f"w/s below the {SERVICE_WPS_FLOOR:,.0f} w/s floor")
            return 1

    echo(f"serve smoke ok: batch==single bit-identical; kernel "
         f"{m['speedup']:.0f}x / {m['batch_windows_per_sec']:,.0f} w/s; "
         f"CLI run scored {expected} windows at {wps:,.0f} w/s "
         f"with manifest")
    return 0
