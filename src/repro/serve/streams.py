"""Tenant window streams: where the serving layer's inputs come from.

A *stream* models one tenant core emitting HPC sampling windows — the
same ``(counters,)`` delta vectors the simulator's sampler produces.
Two sources:

* :class:`ReplayStream` cycles a preloaded delta matrix (a saved corpus
  sliced per tenant by :func:`streams_from_dataset`) — real windows,
  deterministic order;
* :class:`SyntheticStream` draws plausible non-negative counter deltas
  from a seeded generator — no corpus needed, used by the demo/bench
  paths.

Both are deterministic functions of their constructor arguments, so a
serve run (and any chaos scenario layered on it) is exactly
replayable.
"""

import numpy as np

from repro.core.perceptron import HardwareDetector, evax_schema
from repro.sim.hpc import COUNTER_NAMES


class ReplayStream:
    """Cycle one tenant's preloaded ``(n, counters)`` delta matrix."""

    def __init__(self, tenant, matrix, offset=0, period=100):
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or not len(matrix):
            raise ValueError("replay matrix must be a non-empty "
                             "(windows, counters) array")
        self.tenant = tenant
        self.matrix = matrix
        self.period = period
        self._pos = offset % len(matrix)
        self._commit_index = 0

    def next_window(self):
        """Return ``(commit_index, deltas)`` for the next window."""
        window = self.matrix[self._pos]
        self._pos = (self._pos + 1) % len(self.matrix)
        self._commit_index += self.period
        return self._commit_index, window


class SyntheticStream:
    """Seeded synthetic tenant: plausible non-negative counter deltas."""

    def __init__(self, tenant, seed=0, period=100, width=None):
        self.tenant = tenant
        self.period = period
        self.width = width if width is not None else len(COUNTER_NAMES)
        self._rng = np.random.default_rng(seed)
        self._commit_index = 0

    def next_window(self):
        """Return ``(commit_index, deltas)`` for the next window."""
        window = self._rng.integers(
            0, self.period + 1, size=self.width).astype(float)
        self._commit_index += self.period
        return self._commit_index, window


def streams_from_dataset(dataset, tenants, period=None):
    """Split a saved corpus into ``tenants`` replay streams.

    Every tenant replays the *full* window matrix but starts at a
    different phase offset, so the streams are decorrelated without
    sacrificing coverage on small corpora.  Tenant ids are ``"t0"`` ..
    ``"t<n-1>"``.
    """
    matrix = np.asarray([r.deltas for r in dataset.records], dtype=float)
    if not len(matrix):
        raise ValueError("corpus has no windows to replay")
    if period is None:
        period = dataset.sample_period
    return [
        ReplayStream(f"t{i}", matrix,
                     offset=(i * len(matrix)) // max(tenants, 1),
                     period=period)
        for i in range(tenants)
    ]


def synthetic_streams(tenants, seed=0, period=100):
    """``tenants`` decorrelated :class:`SyntheticStream` instances."""
    return [SyntheticStream(f"t{i}", seed=seed + i, period=period)
            for i in range(tenants)]


def demo_detector(seed=0, windows=512, depth=0, width=32):
    """A quickly-fitted detector for demo/bench serve runs.

    Trains on seeded synthetic windows with a sum-based pseudo-label —
    **not** a real EVAX detector (no corpus, no vaccination), just a
    numerically realistic model so ``repro serve`` works out of the box;
    pass ``--detector`` for a trained artifact.  ``depth > 0`` builds
    the deep variant used by the DNN serving benchmarks.
    """
    rng = np.random.default_rng(seed)
    deltas = rng.integers(0, 100, size=(windows, len(COUNTER_NAMES)))
    deltas = deltas.astype(float)
    totals = deltas.sum(axis=1)
    y = (totals > np.median(totals)).astype(float)
    if depth > 0:
        from repro.core.dnn import DeepDetector
        detector = DeepDetector(evax_schema(), depth=depth, width=width,
                                seed=seed, name=f"serve-demo-{depth}x{width}")
    else:
        detector = HardwareDetector(evax_schema(), seed=seed,
                                    name="serve-demo")
    raw = detector.schema.raw_matrix(deltas)
    detector.fit(raw, y, epochs=3, batch_size=64, seed=seed)
    return detector
