import sys

from repro.analysis.check import main

sys.exit(main())
