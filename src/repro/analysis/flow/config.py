"""Declarative configuration of the flow passes.

The pass *algorithms* are generic (they run on any
:class:`~repro.analysis.flow.index.ProjectIndex`); everything
repo-specific — which dataclasses are fingerprinted by which function,
where the fail-secure boundary lies, what persists state — is declared
here in :data:`DEFAULT_CONFIG`.  Tests build small fixture trees and
pass their own :class:`FlowConfig`, so every pass is exercised without
touching the real tree.

Adding a new fingerprinted surface, persistence sink, or fail-secure
region is a one-line change here (see the add-a-pass recipe in
``docs/static_analysis.md``).
"""

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class FingerprintSurface:
    """One (config dataclass, fingerprint function) contract pair."""

    dataclass: str       # qname of the dataclass whose fields are hashed
    fingerprint: str     # qname of the function/method that hashes them
    note: str = ""       # why this surface matters (shown in reports)


@dataclass
class FlowConfig:
    """Everything the four passes need to know about one project."""

    # -- fingerprint-drift -------------------------------------------------
    surfaces: Tuple[FingerprintSurface, ...] = ()

    # -- determinism-taint -------------------------------------------------
    #: call names (last dotted component) that always persist state
    taint_sink_names: frozenset = frozenset()
    #: fully-qualified method names that persist state (resolved
    #: through the call graph, e.g. CheckpointStore.put)
    taint_sink_methods: frozenset = frozenset()
    #: relpath prefixes taint never propagates *into* (and whose own
    #: functions are never reported): the observability boundary
    taint_barriers: Tuple[str, ...] = ()

    # -- fail-secure-flow --------------------------------------------------
    #: relpath prefixes of the fail-secure boundary set
    failsecure_boundaries: Tuple[str, ...] = ()
    #: call names that count as latch/shed sinks inside a handler
    failsecure_sinks: frozenset = frozenset({"_latch", "shed_window"})

    # -- catalog-provenance ------------------------------------------------
    #: relpath prefixes exempt from name resolution (the catalog /
    #: registry implementations themselves)
    catalog_exclude: Tuple[str, ...] = ()
    #: relpath prefixes where counter-name emitters live
    counter_scope: Tuple[str, ...] = ("src/repro/sim/",)
    #: relpath prefixes where metric/event emitters live
    obs_scope: Tuple[str, ...] = ("src/repro/",)
    #: injected catalogs for tests: {"counter"|"metric"|"event": set};
    #: None loads the real repro.sim.hpc / repro.obs.names catalogs
    catalogs: Optional[dict] = field(default=None)


#: the real repository's contract surface
DEFAULT_CONFIG = FlowConfig(
    surfaces=(
        FingerprintSurface(
            "repro.sim.config.SimConfig",
            "repro.sim.memo._config_signature",
            note="memo-table entry fingerprint: a SimConfig field the "
                 "signature misses would serve stale replays bit-exactly "
                 "wrong"),
        FingerprintSurface(
            "repro.campaign.spec.CampaignSpec",
            "repro.campaign.spec.CampaignSpec.fingerprint",
            note="campaign resume guard: a missing axis lets --resume "
                 "replay a cache built from a different matrix"),
        FingerprintSurface(
            "repro.campaign.spec.CampaignCell",
            "repro.campaign.spec.CampaignCell.fingerprint",
            note="content-addresses CellCache entries: a missing field "
                 "collides cells that should simulate separately"),
        FingerprintSurface(
            "repro.arena.loop.ArenaSpec",
            "repro.arena.loop.ArenaSpec.fingerprint",
            note="binds arena checkpoints to their spec: a missing knob "
                 "lets --resume splice mismatched lineages"),
    ),
    taint_sink_names=frozenset({
        "atomic_write_bytes",      # every durable artifact goes through it
        "write_manifest",          # run manifests
        "genome_key",              # content-addresses arena genomes
        "canonical_json",          # genome checkpoint bytes
    }),
    taint_sink_methods=frozenset({
        "repro.runtime.checkpoint.CheckpointStore.put",
        "repro.campaign.cache.CellCache.put",
    }),
    # the observability layer records wall-clock (event timestamps,
    # manifest start/finish) BY DESIGN and none of it feeds replayed
    # state; taint stops at its edge instead of flooding every caller
    taint_barriers=("src/repro/obs/",),
    failsecure_boundaries=(
        "src/repro/defenses/",
        "src/repro/serve/service.py",
        "src/repro/arena/gate.py",
    ),
    catalog_exclude=(
        "src/repro/obs/metrics.py",    # the registry implementation
        "src/repro/obs/log.py",        # the event-log implementation
        "src/repro/obs/names.py",      # the catalog itself
        "src/repro/analysis/",         # the analyzers quote names
    ),
)
