"""Pass 2 — determinism taint into persistence sinks.

The per-file lint rules ban nondeterminism sources inside the
deterministic layers outright.  This pass asks the complementary,
cross-file question: can a nondeterministic value produced *anywhere*
(a wall-clock read in a runner, an unseeded draw in a script helper)
flow through the call graph into something we **persist and later trust
as replayable** — a checkpoint, a cell-cache entry, a genome key, an
atomically-written ledger?

The analysis is function-level may-flow, deliberately coarse:

* a function is **tainted** if its body contains a source (wall clock,
  unseeded RNG, ``os.environ``, bare ``id()``, unordered set
  iteration);
* a function is a **sink holder** if its body calls a configured sink
  (by name — ``atomic_write_bytes``, ``genome_key`` — or by resolved
  method — ``CheckpointStore.put``);
* a finding fires when a tainted function can reach a sink holder in
  the call graph without crossing the observability **barrier**
  (``src/repro/obs/`` records wall-clock timestamps by design; nothing
  behind it feeds replayed state, and without the barrier every
  ``obs_event`` caller would light up).

Coarse means conservative: the tainted value itself is not dataflow-
tracked into the sink argument, so a hit says "audit this chain", with
the shortest source→sink call path rendered as evidence.  Suppress a
vetted chain with ``# repro-lint: disable=determinism-taint -- why``
on the source line.
"""

import ast

from repro.analysis.lint.astutil import dotted_name
from repro.analysis.lint.findings import ERROR, Finding
from repro.analysis.lint.rules.determinism import (
    ForbiddenClockRule, UnseededRngRule,
)

NAME = "determinism-taint"
DESCRIPTION = ("nondeterminism source can reach a persistence sink "
               "through the call graph")

_WALL_CLOCK = ForbiddenClockRule._WALL_CLOCK
_DATETIME_FNS = ForbiddenClockRule._DATETIME_FNS
_NP_GLOBAL = UnseededRngRule._NP_GLOBAL
_PY_RANDOM = UnseededRngRule._PY_RANDOM


def _rng_source(expanded, call):
    parts = expanded.split(".")
    unseeded = not call.args and not call.keywords
    if len(parts) == 3 and parts[0] in ("numpy", "np") \
            and parts[1] == "random":
        if parts[2] in ("default_rng", "RandomState"):
            return f"unseeded `{expanded}()`" if unseeded else None
        if parts[2] in _NP_GLOBAL:
            return f"global NumPy RNG `{expanded}(...)`"
    elif len(parts) == 2 and parts[0] == "random":
        if parts[1] == "Random":
            return "unseeded `random.Random()`" if unseeded else None
        if parts[1] in _PY_RANDOM:
            return f"global stdlib RNG `{expanded}(...)`"
    return None


def _call_source(expanded, call):
    """Describe the nondeterminism source a call is, or None."""
    parts = expanded.split(".")
    if expanded in _WALL_CLOCK:
        return f"wall-clock read `{expanded}()`"
    if parts[-1] in _DATETIME_FNS and (
            "datetime" in parts[:-1] or "date" in parts[:-1]):
        return f"wall-clock read `{expanded}()`"
    if expanded == "os.getenv":
        return "environment read `os.getenv(...)`"
    if expanded == "id" and len(call.args) == 1:
        return "address-derived value `id(...)`"
    return _rng_source(expanded, call)


def _set_iterables(node):
    if isinstance(node, ast.For):
        return [node.iter]
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                         ast.DictComp)):
        return [gen.iter for gen in node.generators]
    return []


def function_sources(info):
    """``(description, node)`` for every source in one function."""
    sources = []
    for node in ast.walk(info.node):
        if isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            desc = _call_source(info.module.expand(dotted), node)
            if desc is not None:
                sources.append((desc, node))
        elif isinstance(node, ast.Attribute):
            if dotted_name(node) is not None and \
                    info.module.expand(dotted_name(node)) == "os.environ":
                sources.append(("environment read `os.environ`", node))
        else:
            for it in _set_iterables(node):
                bare = isinstance(it, (ast.Set, ast.SetComp)) or (
                    isinstance(it, ast.Call)
                    and isinstance(it.func, ast.Name)
                    and it.func.id in ("set", "frozenset"))
                if bare:
                    sources.append(
                        ("unordered set iteration", it))
    return sources


class _SinkTable:
    """Resolves calls against the configured sink sets."""

    def __init__(self, index, config):
        self.index = index
        self.names = config.taint_sink_names
        self.methods = config.taint_sink_methods
        self.method_lastnames = frozenset(
            q.rpartition(".")[2] for q in config.taint_sink_methods)

    def sink_of(self, info, call):
        """The sink a call hits, or None."""
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        last = dotted.split(".")[-1]
        if last in self.names:
            return last
        if last in self.method_lastnames:
            for target in self.index._call_targets(info, dotted):
                if target is not None and target.qname in self.methods:
                    return target.qname
        return None


def _in_prefixes(relpath, prefixes):
    return any(relpath.startswith(p) or relpath == p.rstrip("/")
               for p in prefixes)


def run_pass(index, config):
    barrier_prefixes = config.taint_barriers
    sinks = _SinkTable(index, config)

    def barrier(target):
        return _in_prefixes(target.relpath, barrier_prefixes)

    sink_holders = {}   # qname -> sink description
    for info in index.functions.values():
        if barrier(info):
            continue
        for call, _ in info.calls:
            sink = sinks.sink_of(info, call)
            if sink is not None:
                sink_holders.setdefault(info.qname, sink)
                break

    findings = []
    for info in sorted(index.functions.values(), key=lambda f: f.qname):
        if barrier(info):
            continue
        sources = function_sources(info)
        if not sources:
            continue
        reached = index.reachable(info.qname, barrier=barrier)
        hits = sorted(q for q in sink_holders if q in reached)
        if not hits:
            continue
        goal = hits[0]
        chain = index.call_path(info.qname, goal, barrier=barrier) \
            or [info.qname, goal]
        for desc, node in sources:
            findings.append(Finding(
                rule=NAME, severity=ERROR,
                path=info.relpath, line=node.lineno,
                col=node.col_offset + 1,
                message=f"{desc} in `{info.qname}` can reach "
                        f"persistence sink `{sink_holders[goal]}` via "
                        f"{' -> '.join(chain)}; persisted state must be "
                        f"a pure function of (workload, seed)",
                data={"source": desc, "sink": sink_holders[goal],
                      "chain": chain}))
    return findings
