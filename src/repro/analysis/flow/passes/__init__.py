"""The four whole-program passes.

Each pass module exports ``NAME`` (the rule name findings carry, also
the ``--select``/``--ignore`` key), ``DESCRIPTION``, and
``run_pass(index, config)`` returning a list of lint-model
:class:`~repro.analysis.lint.findings.Finding` objects.  Passes are
pure functions of the index + config: no filesystem access, no global
state — the engine owns discovery, suppression, and ordering.
"""

from repro.analysis.flow.passes import (  # noqa: F401
    catalog, failsecure, fingerprint, taint,
)

#: registration order == execution and documentation order
ALL_PASSES = (fingerprint, taint, failsecure, catalog)
