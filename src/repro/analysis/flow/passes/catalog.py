"""Pass 4 — catalog provenance for dynamically built names.

The per-file lint catalog rules stop at string literals; every
dynamically built counter/metric/event name (``f"{prefix}.hits"``,
a name threaded through a local variable) is invisible to them and
only crashes when the cold path first fires.  This pass extends
coverage to the statically resolvable part of that space:

* a **variable** name is resolved when the function assigns it exactly
  one string constant, or it is a module-level string constant;
* an **f-string** becomes a glob pattern — constant parts verbatim,
  resolvable interpolations substituted, everything else ``*`` — which
  must match at least one catalog entry (``f"{self.prefix}.hits"`` →
  ``*.hits`` must match some cataloged ``<cache>.hits``).

Vacuous patterns (nothing but ``*`` and dots) prove nothing and are
skipped, as are names built across function boundaries — those remain
the documented blind spot and should stay behind a ``CounterBank.has``
guard.  Emitter call-name sets are shared with the lint catalog rules
so the two layers can never disagree about what an emitter is.
"""

import ast
import fnmatch

from repro.analysis.lint.astutil import call_callee
from repro.analysis.lint.findings import ERROR, Finding
from repro.analysis.lint.rules.catalog import (
    COUNTER_CALLS, COUNTER_DOTTED_ONLY, EVENT_CALLS, EVENT_DOTTED_ONLY,
    METRIC_CALLS, METRIC_DOTTED_ONLY, _suggest,
)

NAME = "catalog-provenance"
DESCRIPTION = ("dynamically built counter/metric/event name does not "
               "resolve against its catalog")

#: kind -> (call names, dotted-only call names, scope config attr)
_EMITTERS = {
    "counter": (COUNTER_CALLS, COUNTER_DOTTED_ONLY, "counter_scope"),
    "metric": (METRIC_CALLS, METRIC_DOTTED_ONLY, "obs_scope"),
    "event": (EVENT_CALLS, EVENT_DOTTED_ONLY, "obs_scope"),
}


def load_catalogs(config):
    if config.catalogs is not None:
        return config.catalogs
    from repro.obs.names import ALL_METRICS, EVENTS
    from repro.sim.hpc import COUNTER_NAMES
    return {"counter": frozenset(COUNTER_NAMES),
            "metric": frozenset(ALL_METRICS),
            "event": frozenset(EVENTS)}


def _resolve_local(fn, name):
    """The single constant string a local/module name denotes, or
    None when unbound, non-constant, or multiply assigned."""
    values = [node.value for node in ast.walk(fn.node)
              if isinstance(node, ast.Assign)
              and any(isinstance(t, ast.Name) and t.id == name
                      for t in node.targets)]
    if len(values) == 1 and isinstance(values[0], ast.Constant) \
            and isinstance(values[0].value, str):
        return values[0].value
    if values:
        return None     # reassigned or non-constant: give up
    const = fn.module.constants.get(name)
    if isinstance(const, ast.Constant) and isinstance(const.value, str):
        return const.value
    return None


def _fstring_pattern(fn, node):
    """A JoinedStr as a glob pattern, or None when un-analyzable."""
    parts = []
    for value in node.values:
        if isinstance(value, ast.Constant):
            parts.append(str(value.value))
        elif isinstance(value, ast.FormattedValue):
            resolved = None
            if isinstance(value.value, ast.Name):
                resolved = _resolve_local(fn, value.value.id)
            parts.append(resolved if resolved is not None else "*")
        else:
            return None
    return "".join(parts)


def _is_vacuous(pattern):
    return pattern.replace("*", "").replace(".", "") == ""


def _check_call(fn, call, kind, catalog, findings):
    arg = call.args[0]
    if isinstance(arg, ast.Constant):
        return      # literals are the lint catalog rules' job
    if isinstance(arg, ast.Name):
        name = _resolve_local(fn, arg.id)
        if name is None or name in catalog:
            return
        if "." not in name and _dotted_only(fn, call, kind):
            return
        findings.append(Finding(
            rule=NAME, severity=ERROR,
            path=fn.relpath, line=call.lineno, col=call.col_offset + 1,
            message=f"variable `{arg.id}` resolves to unknown {kind} "
                    f"name {name!r}{_suggest(name, catalog)}",
            data={"kind": kind, "name": name}))
        return
    if isinstance(arg, ast.JoinedStr):
        pattern = _fstring_pattern(fn, arg)
        if pattern is None or _is_vacuous(pattern):
            return
        if "." not in pattern.replace("*", "") \
                and _dotted_only(fn, call, kind):
            return
        if "*" not in pattern:
            if pattern in catalog:
                return
            findings.append(Finding(
                rule=NAME, severity=ERROR,
                path=fn.relpath, line=call.lineno,
                col=call.col_offset + 1,
                message=f"f-string resolves to unknown {kind} name "
                        f"{pattern!r}{_suggest(pattern, catalog)}",
                data={"kind": kind, "name": pattern}))
            return
        if not fnmatch.filter(sorted(catalog), pattern):
            findings.append(Finding(
                rule=NAME, severity=ERROR,
                path=fn.relpath, line=call.lineno,
                col=call.col_offset + 1,
                message=f"f-string pattern {pattern!r} matches no "
                        f"{kind} catalog entry — the name this builds "
                        f"can never be cataloged",
                data={"kind": kind, "pattern": pattern}))


def _dotted_only(fn, call, kind):
    """True when the callee is only an emitter for dotted names."""
    return call_callee(call) in _EMITTERS[kind][1]


def _kind_of(call, relpath, config):
    callee = call_callee(call)
    if callee is None or not call.args:
        return None
    for kind, (calls, dotted_only, scope_attr) in _EMITTERS.items():
        if callee not in calls and callee not in dotted_only:
            continue
        if callee in dotted_only and not isinstance(call.func,
                                                    ast.Attribute):
            continue    # bare get()/set(): not an emitter
        if any(relpath.startswith(p)
               for p in getattr(config, scope_attr)):
            return kind
    return None


def run_pass(index, config):
    catalogs = load_catalogs(config)
    findings = []
    for info in sorted(index.functions.values(), key=lambda f: f.qname):
        relpath = info.relpath
        if any(relpath.startswith(p) for p in config.catalog_exclude):
            continue
        for call, _ in info.calls:
            kind = _kind_of(call, relpath, config)
            if kind is None:
                continue
            _check_call(info, call, kind, catalogs[kind], findings)
    return findings
