"""Pass 3 — fail-secure exception flow.

EVAX's security argument leans on one invariant: when the adaptive
machinery *faults*, the system degrades toward the secure
configuration, never silently toward the fast one.  The runtime
enforces it dynamically (the controller latches always-secure on
detector faults, the fan-out sheds windows under backpressure, serve
attributes per-row faults) — but every one of those protections sits
inside an ``except`` handler, and a handler that swallows the
exception *is* the vulnerability.

This pass statically verifies the boundary set: every ``except``
handler in the configured fail-secure files must, **on all paths
through the handler body**, reach one of

* a ``raise`` (re-raise or translate),
* a latch/shed sink call (``_latch``, ``shed_window``, configurable),
* an **exception escape** — the bound exception object handed onward
  (passed as a call argument/keyword, or stored into a container /
  attribute, e.g. serve's ``faults[i] = exc``).

The all-paths check is conservative in the safe direction: loop bodies
are assumed skippable, an ``if`` guarantees the sink only when both
branches do, a ``return`` before any sink is a swallow.  A handler the
analysis cannot prove safe but a human has vetted takes an inline
``# repro-lint: disable=fail-secure-flow -- <why>`` on its
``except`` line.
"""

import ast

from repro.analysis.lint.astutil import call_callee
from repro.analysis.lint.findings import ERROR, Finding

NAME = "fail-secure-flow"
DESCRIPTION = ("except handler in the fail-secure boundary may swallow "
               "a fault without latching, shedding, or re-raising")


def _exc_escapes(node, exc_name):
    """True when the bound exception object is handed onward."""
    if exc_name is None:
        return False
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            handed = list(sub.args) + [kw.value for kw in sub.keywords]
            if any(isinstance(a, ast.Name) and a.id == exc_name
                   for a in handed):
                return True
        elif isinstance(sub, ast.Assign):
            stored = any(isinstance(t, (ast.Subscript, ast.Attribute))
                         for t in sub.targets)
            names = {n.id for n in ast.walk(sub.value)
                     if isinstance(n, ast.Name)}
            if stored and exc_name in names:
                return True
    return False


def _has_sink_call(node, sink_names):
    return any(isinstance(sub, ast.Call)
               and call_callee(sub) in sink_names
               for sub in ast.walk(node))


def _stmt_sinks(stmt, exc_name, sink_names):
    """Does this single statement itself reach a sink?"""
    if isinstance(stmt, ast.Raise):
        return True
    return _has_sink_call(stmt, sink_names) \
        or _exc_escapes(stmt, exc_name)


def _terminates(stmt):
    return isinstance(stmt, (ast.Return, ast.Break, ast.Continue,
                             ast.Raise))


def _guarantees_sink(stmts, exc_name, sink_names):
    """All-paths: every execution through ``stmts`` reaches a sink.

    Compound statements are analyzed structurally FIRST — a sink
    buried in one branch of an ``if`` (or in a maybe-zero-iteration
    loop body) must not count as guaranteed."""
    for stmt in stmts:
        if isinstance(stmt, ast.If):
            body = _guarantees_sink(stmt.body, exc_name, sink_names)
            orelse = _guarantees_sink(stmt.orelse, exc_name, sink_names)
            if body and orelse:
                return True
            # a branch that leaves the handler without sinking is a
            # proven swallow path
            for branch, ok in ((stmt.body, body), (stmt.orelse, orelse)):
                if branch and not ok and _terminates(branch[-1]):
                    return False
            continue
        if isinstance(stmt, ast.Try):
            covered = _guarantees_sink(stmt.body, exc_name, sink_names) \
                and all(_guarantees_sink(h.body, exc_name, sink_names)
                        for h in stmt.handlers)
            if covered or _guarantees_sink(stmt.finalbody, exc_name,
                                           sink_names):
                return True
            continue
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            if _guarantees_sink(stmt.body, exc_name, sink_names):
                return True
            continue
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            continue    # body may execute zero times: no guarantee
        if _stmt_sinks(stmt, exc_name, sink_names):
            return True
        if _terminates(stmt):
            return False    # leaves the handler without sinking
    return False            # falls off the end without sinking


def _in_boundary(relpath, prefixes):
    return any(relpath.startswith(p) or relpath == p for p in prefixes)


def run_pass(index, config):
    findings = []
    for modname in sorted(index.modules):
        mod = index.modules[modname]
        if not _in_boundary(mod.relpath, config.failsecure_boundaries):
            continue
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _guarantees_sink(node.body, node.name,
                                config.failsecure_sinks):
                continue
            caught = "exception"
            if node.type is not None:
                caught = ast.unparse(node.type)
            findings.append(Finding(
                rule=NAME, severity=ERROR,
                path=mod.relpath, line=node.lineno,
                col=node.col_offset + 1,
                message=f"`except {caught}` handler in the fail-secure "
                        f"boundary has a path that swallows the fault — "
                        f"every path must latch "
                        f"({'/'.join(sorted(config.failsecure_sinks))}), "
                        f"hand the exception onward, or re-raise",
                data={"caught": caught}))
    return findings
