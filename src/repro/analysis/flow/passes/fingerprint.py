"""Pass 1 — fingerprint-coverage drift.

Every cache key in this repo is a hash over a config dataclass: the
memo table hashes :class:`SimConfig`, the campaign cache hashes
:class:`CampaignCell`, resume guards hash :class:`CampaignSpec` and
:class:`ArenaSpec`.  The failure mode is silent and nasty — add a field
to the dataclass, forget the fingerprint function, and two configs that
differ in that field now *collide*: the cache serves bit-exact results
for the wrong configuration.

This pass closes the loop statically.  For each declared
:class:`~repro.analysis.flow.config.FingerprintSurface` it computes the
set of fields the fingerprint function *consumes* — attribute reads on
the tracked config object, followed interprocedurally through helper
calls that receive it (``self.to_dict()``, ``_canon(config)``, …) — and
flags every declared field that is neither consumed nor annotated
``# flow: fingerprint-exempt(<why>)``.  A ``dataclasses.fields`` /
``asdict`` / ``astuple`` call on the tracked object is the covers-all
idiom: it consumes every field by construction, including future ones.
"""

import ast

from repro.analysis.flow.annotations import fingerprint_exemptions
from repro.analysis.lint.astutil import dotted_name
from repro.analysis.lint.findings import ERROR, Finding

NAME = "fingerprint-drift"
DESCRIPTION = ("config-dataclass field not consumed by its fingerprint "
               "function (and not fingerprint-exempt)")

#: calls that consume every dataclass field by construction
_COVERS_ALL = frozenset({"dataclasses.fields", "dataclasses.asdict",
                         "dataclasses.astuple"})

#: interprocedural follow depth — fingerprints are shallow by design
#: (fingerprint -> to_dict -> helper); anything deeper is already a
#: smell worth a finding
_MAX_DEPTH = 4


def _first_param(fn):
    args = fn.node.args
    ordered = list(args.posonlyargs) + list(args.args)
    return ordered[0].arg if ordered else None


def _tracked_root(fn, cls):
    """The local name bound to the config object inside ``fn``."""
    if fn.cls is not None and fn.cls.qname == cls.qname:
        return _first_param(fn)          # a method: self/cls
    return _first_param(fn)              # free function: first arg


class _Consumption:
    """Accumulates field reads across the helper-call closure."""

    def __init__(self, index, cls):
        self.index = index
        self.cls = cls
        self.consumed = set()
        self.covers_all = False
        self._visited = set()

    def collect(self, fn, tracked, depth=0):
        if fn is None or tracked is None or depth > _MAX_DEPTH:
            return
        key = (fn.qname, tracked)
        if key in self._visited or self.covers_all:
            return
        self._visited.add(key)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Attribute) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == tracked:
                self.consumed.add(node.attr)
            elif isinstance(node, ast.Call):
                self._follow_call(fn, node, tracked, depth)

    def _follow_call(self, fn, call, tracked, depth):
        dotted = dotted_name(call.func)
        if dotted is None:
            return
        expanded = fn.module.expand(dotted)
        if expanded in _COVERS_ALL and any(
                isinstance(a, ast.Name) and a.id == tracked
                for a in call.args):
            self.covers_all = True
            return
        parts = dotted.split(".")
        # tracked.m(...): a method call on the config object itself
        # (covers both `config.to_dict()` in free functions and
        # `self.to_dict()` once we are inside a method of the class)
        if len(parts) == 2 and parts[0] == tracked:
            self.collect(self.index.lookup_method(self.cls, parts[1]),
                         "self", depth + 1)
            return
        # helper(tracked, ...): follow the object into the callee's
        # matching parameter
        positions = [i for i, a in enumerate(call.args)
                     if isinstance(a, ast.Name) and a.id == tracked]
        if not positions:
            return
        for target in self.index._call_targets(fn, dotted):
            if target is None:
                continue
            args = target.node.args
            params = [a.arg for a in
                      list(args.posonlyargs) + list(args.args)]
            # skip the self/cls slot when the callee is a method
            offset = 1 if target.cls is not None else 0
            for pos in positions:
                slot = pos + offset
                if slot < len(params):
                    self.collect(target, params[slot], depth + 1)


def run_pass(index, config):
    findings = []
    for surface in config.surfaces:
        cls = index.classes.get(surface.dataclass)
        fn = index.functions.get(surface.fingerprint)
        missing = [("dataclass", surface.dataclass)] if cls is None else []
        if fn is None:
            missing.append(("fingerprint function", surface.fingerprint))
        if missing:
            # a renamed/moved surface must fail loudly, not silently
            # stop checking — anchor at whichever side still exists
            anchor = cls or fn
            path = anchor.module.relpath if anchor else "<flow-config>"
            line = anchor.node.lineno if anchor else 1
            what = " and ".join(f"{kind} `{qname}`"
                                for kind, qname in missing)
            findings.append(Finding(
                rule=NAME, severity=ERROR, path=path, line=line, col=1,
                message=f"fingerprint surface is broken: {what} not "
                        f"found in the project index — update the flow "
                        f"config if it moved",
                data={"surface": surface.dataclass}))
            continue
        walker = _Consumption(index, cls)
        walker.collect(fn, _tracked_root(fn, cls))
        if walker.covers_all:
            continue
        exempt = fingerprint_exemptions(cls.module.source.text)
        for field in cls.fields:
            if field.name in walker.consumed:
                continue
            if field.lineno in exempt:
                continue
            findings.append(Finding(
                rule=NAME, severity=ERROR,
                path=cls.module.relpath, line=field.lineno, col=1,
                message=f"field `{cls.name}.{field.name}` is never "
                        f"consumed by `{surface.fingerprint}` — configs "
                        f"differing only in it share a cache entry; hash "
                        f"it or annotate "
                        f"`# flow: fingerprint-exempt(<why>)`",
                data={"dataclass": cls.qname, "field": field.name,
                      "fingerprint": surface.fingerprint,
                      "note": surface.note}))
    return findings
