"""The whole-program project index the flow passes run on.

One :class:`ProjectIndex` is built per run: every Python file under the
given paths is parsed **once** (through the shared
:class:`~repro.analysis.source.SourceCache`) into a
:class:`ModuleInfo`, and from those the index derives

* a **module symbol table** — per-module import aliases (``np`` →
  ``numpy``, ``from x import y`` → ``x.y``) so dotted call names can be
  expanded to canonical form;
* a **dataclass field registry** — every ``@dataclass`` body's declared
  fields with their line numbers (the fingerprint-drift pass checks
  these against the fingerprint functions);
* an **approximate call graph** — for every function/method, the set
  of project functions it may call.  Attribute calls are resolved via,
  in order: ``self.``/``cls.`` lookup (including one level of base
  classes), instance-attribute types recorded from ``self.x = Cls()``
  assignments, constructor-typed locals (``x = Cls(); x.m()``),
  imported module functions, and — as a last resort — a unique-name
  fallback that binds ``obj.m()`` to ``m`` when at most
  :data:`AMBIGUITY_CAP` project classes define a method of that name.

The graph is deliberately conservative-approximate: it may add edges
that cannot execute (the fallback) and misses calls through dynamic
dispatch tables, but it is deterministic, fast (one pass per file), and
precise enough to carry function-level taint and field-consumption
facts across module boundaries.
"""

import ast
import os

from repro.analysis.lint.astutil import dotted_name
from repro.analysis.source import SourceCache

#: name-based attribute-call fallback binds ``obj.m()`` to every project
#: method named ``m`` only when at most this many classes define one —
#: common names (``run``, ``get``) would otherwise wire the graph into
#: a near-clique and drown the passes in false paths
AMBIGUITY_CAP = 2

#: directories never descended into (mirrors the lint engine)
_SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules",
              ".venv", "venv", ".eggs", ".hypothesis", ".mypy_cache",
              ".ruff_cache"}


class FieldInfo:
    """One declared dataclass field."""

    __slots__ = ("name", "lineno")

    def __init__(self, name, lineno):
        self.name = name
        self.lineno = lineno


class FunctionInfo:
    """One function or method definition."""

    __slots__ = ("qname", "name", "node", "module", "cls", "calls",
                 "callees", "local_types")

    def __init__(self, qname, name, node, module, cls=None):
        self.qname = qname
        self.name = name
        self.node = node
        self.module = module
        self.cls = cls
        self.calls = []          # [(ast.Call, expanded dotted name | None)]
        self.callees = set()     # resolved project-function qnames
        self.local_types = {}    # var name -> project class qname

    @property
    def relpath(self):
        return self.module.relpath

    def __repr__(self):
        return f"<FunctionInfo {self.qname}>"


class ClassInfo:
    """One class definition (with its dataclass field registry)."""

    __slots__ = ("qname", "name", "node", "module", "methods",
                 "base_names", "is_dataclass", "fields", "attr_types")

    def __init__(self, qname, name, node, module):
        self.qname = qname
        self.name = name
        self.node = node
        self.module = module
        self.methods = {}        # method name -> FunctionInfo
        self.base_names = [dotted_name(b) for b in node.bases]
        self.is_dataclass = False
        self.fields = []         # [FieldInfo] (dataclasses only)
        self.attr_types = {}     # self.<attr> -> project class qname

    def __repr__(self):
        return f"<ClassInfo {self.qname}>"


class ModuleInfo:
    """One parsed module and its local symbol table."""

    __slots__ = ("modname", "path", "relpath", "source", "tree", "imports",
                 "functions", "classes", "constants")

    def __init__(self, modname, path, relpath, source):
        self.modname = modname
        self.path = path
        self.relpath = relpath
        self.source = source
        self.tree = source.tree
        self.imports = {}        # local alias -> canonical dotted prefix
        self.functions = {}      # name -> FunctionInfo (module level)
        self.classes = {}        # name -> ClassInfo
        self.constants = {}      # module-level NAME -> ast value node

    def expand(self, dotted):
        """Rewrite ``dotted``'s first component through the import
        table (``np.random.rand`` -> ``numpy.random.rand``)."""
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        target = self.imports.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def __repr__(self):
        return f"<ModuleInfo {self.modname}>"


def _module_name(relpath):
    """``src/repro/sim/memo.py`` -> ``repro.sim.memo`` (fixture trees
    without a ``src/`` prefix map the same way)."""
    parts = relpath.replace(os.sep, "/").split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][:-len(".py")]
    return ".".join(parts)


def _is_dataclass_decorator(node):
    target = node.func if isinstance(node, ast.Call) else node
    dotted = dotted_name(target)
    return dotted is not None and dotted.split(".")[-1] == "dataclass"


def _annotation_is_classvar(node):
    for sub in ast.walk(node):
        dotted = dotted_name(sub)
        if dotted and dotted.split(".")[-1] == "ClassVar":
            return True
    return False


class ProjectIndex:
    """Symbol tables, dataclass registry and call graph for one tree."""

    def __init__(self, root):
        self.root = os.path.abspath(root)
        self.modules = {}            # modname -> ModuleInfo
        self.functions = {}          # qname -> FunctionInfo
        self.classes = {}            # qname -> ClassInfo
        self.methods_by_name = {}    # method name -> [FunctionInfo]
        self.parse_errors = []       # [(relpath, SyntaxError)]

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, paths, root=None, cache=None):
        """Index every ``*.py`` under ``paths`` (files or dirs)."""
        index = cls(root or os.getcwd())
        cache = cache if cache is not None else SourceCache()
        for path in cls._discover(paths):
            relpath = os.path.relpath(
                os.path.abspath(path), index.root).replace(os.sep, "/")
            source = cache.get(path)
            try:
                source.tree
            except SyntaxError as exc:
                index.parse_errors.append((relpath, exc))
                continue
            index._add_module(_module_name(relpath), path, relpath, source)
        index._resolve_calls()
        return index

    @staticmethod
    def _discover(paths):
        found = set()
        for raw in paths:
            raw = os.path.abspath(raw)
            if os.path.isfile(raw):
                if raw.endswith(".py"):
                    found.add(raw)
                continue
            if not os.path.isdir(raw):
                raise FileNotFoundError(f"no such path: {raw}")
            for dirpath, dirnames, filenames in os.walk(raw):
                dirnames[:] = sorted(d for d in dirnames
                                     if d not in _SKIP_DIRS
                                     and not d.endswith(".egg-info"))
                for name in filenames:
                    if name.endswith(".py"):
                        found.add(os.path.join(dirpath, name))
        return sorted(found)

    def _add_module(self, modname, path, relpath, source):
        mod = ModuleInfo(modname, path, relpath, source)
        self.modules[modname] = mod
        self._collect_imports(mod)
        for node in mod.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod, node, cls=None)
            elif isinstance(node, ast.ClassDef):
                self._add_class(mod, node)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                mod.constants[node.targets[0].id] = node.value

    def _collect_imports(self, mod):
        package = mod.modname.rpartition(".")[0]
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    mod.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    parts = mod.modname.split(".")
                    # one level strips the module name itself (its
                    # package); each further level strips a package
                    parts = parts[:len(parts) - node.level]
                    base = ".".join(parts + ([node.module]
                                             if node.module else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    mod.imports[local] = f"{base}.{alias.name}" if base \
                        else alias.name

    def _add_function(self, mod, node, cls):
        if cls is None:
            qname = f"{mod.modname}.{node.name}"
        else:
            qname = f"{cls.qname}.{node.name}"
        info = FunctionInfo(qname, node.name, node, mod, cls)
        self.functions[qname] = info
        if cls is None:
            mod.functions[node.name] = info
        else:
            cls.methods[node.name] = info
            self.methods_by_name.setdefault(node.name, []).append(info)
        return info

    def _add_class(self, mod, node):
        qname = f"{mod.modname}.{node.name}"
        cls = ClassInfo(qname, node.name, node, mod)
        self.classes[qname] = cls
        mod.classes[node.name] = cls
        cls.is_dataclass = any(_is_dataclass_decorator(d)
                               for d in node.decorator_list)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod, stmt, cls)
            elif cls.is_dataclass and isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name) \
                    and not _annotation_is_classvar(stmt.annotation):
                cls.fields.append(FieldInfo(stmt.target.id, stmt.lineno))

    # -- resolution helpers ------------------------------------------------

    def resolve_class(self, mod, name):
        """A class name as written in ``mod`` -> ClassInfo, or None."""
        if name is None:
            return None
        if name in mod.classes:
            return mod.classes[name]
        expanded = mod.expand(name)
        return self.classes.get(expanded)

    def _iter_class_and_bases(self, cls, _seen=None):
        seen = _seen or set()
        if cls is None or cls.qname in seen:
            return
        seen.add(cls.qname)
        yield cls
        for base_name in cls.base_names:
            base = self.resolve_class(cls.module, base_name)
            if base is not None:
                yield from self._iter_class_and_bases(base, seen)

    def lookup_method(self, cls, name):
        """``name`` on ``cls`` or its (project-resolvable) bases."""
        for c in self._iter_class_and_bases(cls):
            if name in c.methods:
                return c.methods[name]
        return None

    def _class_target(self, cls):
        """The function reached by constructing ``cls`` (its
        ``__init__`` when defined, else no edge)."""
        return self.lookup_method(cls, "__init__")

    # -- call-graph construction -------------------------------------------

    def _resolve_calls(self):
        for info in self.functions.values():
            self._infer_local_types(info)
        # instance-attribute types need local types of __init__ first
        for cls in self.classes.values():
            self._infer_attr_types(cls)
        for info in self.functions.values():
            self._resolve_function_calls(info)

    def _infer_local_types(self, info):
        for node in ast.walk(info.node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)):
                continue
            ctor = dotted_name(node.value.func)
            cls = self.resolve_class(info.module, ctor) if ctor else None
            if cls is not None:
                info.local_types[node.targets[0].id] = cls

    def _infer_attr_types(self, cls):
        """Record ``self.<attr> = SomeClass(...)`` bindings from every
        method body (last assignment wins; approximate on purpose)."""
        for method in cls.methods.values():
            for node in ast.walk(method.node):
                if not (isinstance(node, ast.Assign)
                        and len(node.targets) == 1
                        and isinstance(node.value, ast.Call)):
                    continue
                target = dotted_name(node.targets[0])
                if not (target and target.startswith("self.")
                        and target.count(".") == 1):
                    continue
                ctor = dotted_name(node.value.func)
                bound = self.resolve_class(cls.module, ctor) if ctor \
                    else None
                if bound is not None:
                    cls.attr_types[target.split(".")[1]] = bound

    def _resolve_function_calls(self, info):
        mod = info.module
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            info.calls.append((node, mod.expand(dotted)))
            if dotted is None:
                continue
            for target in self._call_targets(info, dotted):
                if target is not None:
                    info.callees.add(target.qname)

    def _call_targets(self, info, dotted):
        """Project functions a dotted call name may reach."""
        parts = dotted.split(".")
        mod, cls = info.module, info.cls
        # self.m() / cls.m() / self.attr.m()
        if parts[0] in ("self", "cls") and cls is not None:
            if len(parts) == 2:
                return [self.lookup_method(cls, parts[1])]
            if len(parts) == 3:
                bound = cls.attr_types.get(parts[1])
                if bound is not None:
                    return [self.lookup_method(bound, parts[2])]
            return []
        # constructor-typed local: x = Cls(); x.m()
        if len(parts) == 2 and parts[0] in info.local_types:
            return [self.lookup_method(info.local_types[parts[0]],
                                       parts[1])]
        # plain name: module function, local class ctor, or import
        if len(parts) == 1:
            name = parts[0]
            if name in mod.functions:
                return [mod.functions[name]]
            bound = self.resolve_class(mod, name)
            if bound is not None:
                return [self._class_target(bound)]
            expanded = mod.expand(name)
            if expanded in self.functions:
                return [self.functions[expanded]]
            if expanded in self.classes:
                return [self._class_target(self.classes[expanded])]
            return []
        # dotted: expand the head through imports and try function,
        # class ctor, then Class.method
        expanded = mod.expand(dotted)
        if expanded in self.functions:
            return [self.functions[expanded]]
        if expanded in self.classes:
            return [self._class_target(self.classes[expanded])]
        owner, _, attr = expanded.rpartition(".")
        if owner in self.classes:
            return [self.lookup_method(self.classes[owner], attr)]
        # unique-name fallback for obj.m(): bind to project methods
        # named m when the name is distinctive enough
        candidates = self.methods_by_name.get(parts[-1], ())
        if 0 < len(candidates) <= AMBIGUITY_CAP:
            return list(candidates)
        return []

    # -- queries -----------------------------------------------------------

    def reachable(self, qname, barrier=None, max_depth=12):
        """Every function qname transitively callable from ``qname``.

        ``barrier`` is a predicate on :class:`FunctionInfo`; edges
        *into* functions matching it are not followed (used to stop
        taint at the observability layer).
        """
        seen = {qname}
        frontier = [qname]
        for _ in range(max_depth):
            if not frontier:
                break
            next_frontier = []
            for current in frontier:
                info = self.functions.get(current)
                if info is None:
                    continue
                for callee in info.callees:
                    if callee in seen:
                        continue
                    target = self.functions.get(callee)
                    if target is None:
                        continue
                    if barrier is not None and barrier(target):
                        continue
                    seen.add(callee)
                    next_frontier.append(callee)
            frontier = next_frontier
        return seen

    def call_path(self, start, goal, barrier=None, max_depth=12):
        """One shortest call chain ``start -> ... -> goal`` (qnames),
        or None.  Used to render taint findings with their evidence."""
        if start == goal:
            return [start]
        parents = {start: None}
        frontier = [start]
        for _ in range(max_depth):
            if not frontier:
                break
            next_frontier = []
            for current in frontier:
                info = self.functions.get(current)
                if info is None:
                    continue
                for callee in sorted(info.callees):
                    if callee in parents:
                        continue
                    target = self.functions.get(callee)
                    if target is None:
                        continue
                    if barrier is not None and barrier(target):
                        continue
                    parents[callee] = current
                    if callee == goal:
                        chain = [callee]
                        while chain[-1] is not None:
                            parent = parents[chain[-1]]
                            if parent is None:
                                break
                            chain.append(parent)
                        return list(reversed(chain))
                    next_frontier.append(callee)
            frontier = next_frontier
        return None
