"""Committed finding baseline — ratchet, don't flag-day.

A whole-program pass landing on an existing tree may surface findings
that are real debt but not this PR's to fix.  The baseline file
(``.flow-baseline.json`` at the repo root, committed) records those as
``(rule, key, reason)`` entries: a finding whose stable key appears in
the baseline is reported as *accepted* and does not fail the run; any
finding not in the baseline is *new* and exits 1.  Shrinking the file
is always safe; growing it is a reviewed decision.

Keys are derived from finding ``data`` (dataclass+field, source→sink
chain, name/pattern) rather than line numbers, so unrelated edits don't
churn the file.
"""

import json
from dataclasses import dataclass

SCHEMA = "repro-flow-baseline/1"


def baseline_key(finding):
    """Stable, line-number-free identity of one finding."""
    data = finding.data or {}
    if finding.rule == "fingerprint-drift" and "field" in data:
        return f"{data.get('dataclass')}.{data['field']}"
    if finding.rule == "determinism-taint" and "chain" in data:
        return (f"{data['chain'][0]}:{data.get('source')}"
                f"->{data.get('sink')}")
    if finding.rule == "fail-secure-flow":
        return f"{finding.path}:except {data.get('caught', '?')}"
    if finding.rule == "catalog-provenance":
        name = data.get("name") or data.get("pattern")
        return f"{finding.path}:{data.get('kind')}:{name}"
    return f"{finding.path}:{finding.rule}"


class BaselineError(Exception):
    """Unreadable or wrong-schema baseline file."""


@dataclass
class Baseline:
    """The accepted-findings set."""

    entries: list           # [{"rule": ..., "key": ..., "reason": ...}]

    @property
    def accepted(self):
        return {(e["rule"], e["key"]) for e in self.entries}

    @classmethod
    def empty(cls):
        return cls(entries=[])

    @classmethod
    def load(cls, path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}")
        if payload.get("schema") != SCHEMA:
            raise BaselineError(
                f"baseline {path} has schema "
                f"{payload.get('schema')!r}, expected {SCHEMA!r}")
        entries = payload.get("entries", [])
        if not all(isinstance(e, dict) and "rule" in e and "key" in e
                   for e in entries):
            raise BaselineError(
                f"baseline {path}: entries must be objects with "
                f"'rule' and 'key'")
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings, reason):
        entries = [{"rule": f.rule, "key": baseline_key(f),
                    "reason": reason} for f in findings]
        unique = {(e["rule"], e["key"]): e for e in entries}
        return cls(entries=[unique[k] for k in sorted(unique)])

    def save(self, path):
        from repro.runtime.atomic import atomic_write_bytes
        payload = {"schema": SCHEMA,
                   "entries": sorted(self.entries,
                                     key=lambda e: (e["rule"], e["key"]))}
        atomic_write_bytes(
            path, (json.dumps(payload, indent=2) + "\n").encode())
