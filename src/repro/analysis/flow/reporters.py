"""Text and JSON renderers for a :class:`FlowResult`.

Same shape family as the lint reporters; the JSON payload is
schema-versioned as ``repro-flow/1`` and pinned by
``tests/analysis/test_flow_passes.py``.  Baselined findings are
reported in their own section/array — visible debt, not a failure.
"""

from repro.analysis.lint.findings import ERROR, WARNING

JSON_SCHEMA = "repro-flow/1"


def render_text(result):
    """Human-readable report: new findings, then accepted debt."""
    lines = [f"{f.location()}: [{f.severity}] {f.rule}: {f.message}"
             for f in result.findings]
    for finding in result.baselined:
        lines.append(f"{finding.location()}: [baselined] "
                     f"{finding.rule}: {finding.message}")
    passes = ", ".join(result.passes)
    if result.findings:
        lines.append(
            f"repro-flow: {len(result.findings)} new finding(s) "
            f"({len(result.baselined)} baselined, "
            f"{result.suppressed} suppressed) across {result.files} "
            f"modules / {result.functions} functions [{passes}]")
    else:
        lines.append(
            f"repro-flow: clean — {result.files} modules / "
            f"{result.functions} functions, passes: {passes} "
            f"({len(result.baselined)} baselined, "
            f"{result.suppressed} suppressed)")
    return "\n".join(lines)


def render_json(result, root=None):
    """JSON-serializable dict of the full run outcome."""
    severities = [f.severity for f in result.findings]
    return {
        "schema": JSON_SCHEMA,
        "root": str(root) if root is not None else None,
        "passes": list(result.passes),
        "index": {"files": result.files,
                  "functions": result.functions},
        "summary": {
            "new": len(result.findings),
            "baselined": len(result.baselined),
            "suppressed": result.suppressed,
            "error": severities.count(ERROR),
            "warning": severities.count(WARNING),
        },
        "findings": [f.to_dict() for f in result.findings],
        "baselined": [f.to_dict() for f in result.baselined],
    }
