"""``# flow:`` annotations — explicit, justified contract exemptions.

Syntax (the reason is mandatory; an empty one is not an exemption)::

    index: int     # flow: fingerprint-exempt(position in matrix; cache
                   #   entries must be shared across campaigns)

    # flow: fingerprint-exempt(derived at load time, never hashed)
    cache_dir: str

A directive on a field's own line exempts that field; a directive on a
standalone comment line exempts the next line.  This is deliberately a
*different* channel from ``# repro-lint: disable=...`` suppressions:
a suppression silences a finding, an exemption declares the exclusion
to be part of the fingerprint's contract — the JSON report lists
exemptions with their reasons so reviewers can audit them.
"""

import re

_EXEMPT = re.compile(
    r"#\s*flow:\s*fingerprint-exempt\(\s*([^)]+?)\s*\)")


def fingerprint_exemptions(text):
    """Map ``{lineno: reason}`` of fingerprint-exempt field lines."""
    table = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        match = _EXEMPT.search(line)
        if match is None:
            continue
        # a comment-only line shields the line it precedes
        target = lineno + 1 if line.lstrip().startswith("#") else lineno
        table[target] = match.group(1)
    return table
