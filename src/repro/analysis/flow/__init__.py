"""Whole-program contract verifier (``repro.analysis.flow``).

Where :mod:`repro.analysis.lint` checks one file at a time, this
package builds a **project index** — a one-parse-per-file symbol table,
dataclass field registry, and approximate call graph over ``src/repro``
— and runs four cross-file passes on top of it:

* ``fingerprint-drift`` — every declared field of a fingerprinted
  config dataclass is consumed by its fingerprint function (or carries
  an explicit ``# flow: fingerprint-exempt(<why>)`` annotation);
* ``determinism-taint`` — nondeterminism sources (wall clock, unseeded
  RNG, ``os.environ``, ``id()``, bare-set iteration) must not reach
  state-persisting sinks (``CheckpointStore``/``CellCache``,
  ``runtime.atomic`` writers, ``genome_key``, ledger writers) through
  the call graph;
* ``fail-secure-flow`` — every ``except`` handler inside the
  fail-secure boundary (controller, fan-out, serve shed paths, gate)
  reaches a latch/shed/re-raise sink on all paths;
* ``catalog-provenance`` — counter/metric/event names built from
  variables and f-strings resolve to ``obs/names.py`` /
  ``COUNTER_NAMES`` entries.

Findings reuse the lint :class:`~repro.analysis.lint.findings.Finding`
model, inline suppressions, and reporter shapes; the JSON payload is
schema-versioned as ``repro-flow/1`` and accepted findings live in a
committed baseline file.  See ``docs/static_analysis.md``.
"""

from repro.analysis.flow.engine import (  # noqa: F401
    FlowEngine, FlowResult, FlowUsageError, run_flow,
)
from repro.analysis.flow.index import ProjectIndex  # noqa: F401
