import sys

from repro.analysis.flow.cli import main

sys.exit(main())
