"""The flow engine: index construction, pass dispatch, suppression,
baseline split.

One :class:`FlowEngine` owns a :class:`~repro.analysis.flow.config.
FlowConfig` and a pass selection.  :meth:`FlowEngine.run` builds the
:class:`~repro.analysis.flow.index.ProjectIndex` (through the shared
:class:`~repro.analysis.source.SourceCache`, so a combined lint+flow
run parses each file exactly once), runs the selected passes, applies
the same inline ``# repro-lint: disable=...`` suppressions the linter
honors, and splits the surviving findings against the committed
baseline into *new* (fail the run) and *baselined* (accepted debt).
"""

import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.flow.baseline import Baseline, baseline_key
from repro.analysis.flow.config import DEFAULT_CONFIG
from repro.analysis.flow.index import ProjectIndex
from repro.analysis.flow.passes import ALL_PASSES
from repro.analysis.lint.findings import ERROR, Finding
from repro.analysis.lint.suppress import is_suppressed, suppressions
from repro.analysis.source import SourceCache

#: engine-level pseudo-rule for unparseable files (mirrors the linter)
PARSE_ERROR_RULE = "parse-error"

PASS_MODULES = {mod.NAME: mod for mod in ALL_PASSES}


class FlowUsageError(Exception):
    """Bad pass selection, nonexistent path, broken baseline."""


def resolve_passes(select=None, ignore=None):
    """The pass modules to run, in registration order."""
    for name in (select or []) + (ignore or []):
        if name not in PASS_MODULES:
            known = ", ".join(sorted(PASS_MODULES))
            raise FlowUsageError(
                f"unknown pass {name!r} (known: {known})")
    chosen = [mod for mod in ALL_PASSES
              if (select is None or mod.NAME in select)
              and (ignore is None or mod.NAME not in ignore)]
    if not chosen:
        raise FlowUsageError("pass selection left nothing to run")
    return chosen


@dataclass
class FlowResult:
    """Outcome of one whole-program run."""

    findings: list          # NEW findings (post-suppression, post-baseline)
    baselined: list         # findings accepted by the baseline
    suppressed: int
    files: int              # modules indexed
    functions: int          # functions in the call graph
    passes: list = field(default_factory=list)   # pass names run

    @property
    def clean(self):
        return not self.findings


class FlowEngine:
    """Run the whole-program passes over one tree."""

    def __init__(self, config=None, root=None, cache=None,
                 select=None, ignore=None):
        self.config = config if config is not None else DEFAULT_CONFIG
        self.root = Path(root or os.getcwd()).resolve()
        self.cache = cache if cache is not None else SourceCache()
        self.passes = resolve_passes(select=select, ignore=ignore)

    def run(self, paths, baseline=None):
        try:
            index = ProjectIndex.build(paths, root=self.root,
                                       cache=self.cache)
        except FileNotFoundError as exc:
            raise FlowUsageError(str(exc))
        findings = [
            Finding(rule=PARSE_ERROR_RULE, severity=ERROR, path=relpath,
                    line=exc.lineno or 1, col=exc.offset or 1,
                    message=f"syntax error: {exc.msg}")
            for relpath, exc in index.parse_errors]
        for mod in self.passes:
            findings.extend(mod.run_pass(index, self.config))
        tables = {m.relpath: suppressions(m.source.text)
                  for m in index.modules.values()}
        kept, suppressed = [], 0
        for finding in findings:
            table = tables.get(finding.path)
            if table and is_suppressed(table, finding):
                suppressed += 1
            else:
                kept.append(finding)
        kept.sort(key=Finding.sort_key)
        accepted = baseline.accepted if baseline is not None else set()
        new = [f for f in kept
               if (f.rule, baseline_key(f)) not in accepted]
        baselined = [f for f in kept
                     if (f.rule, baseline_key(f)) in accepted]
        return FlowResult(
            findings=new, baselined=baselined, suppressed=suppressed,
            files=len(index.modules) + len(index.parse_errors),
            functions=len(index.functions),
            passes=[mod.NAME for mod in self.passes])


def run_flow(paths, root=None, config=None, select=None, ignore=None,
             cache=None, baseline=None):
    """One-call convenience mirroring ``lint.engine.run_lint``."""
    engine = FlowEngine(config=config, root=root, cache=cache,
                        select=select, ignore=ignore)
    return engine.run(paths, baseline=baseline)


__all__ = ["FlowEngine", "FlowResult", "FlowUsageError", "run_flow",
           "resolve_passes", "Baseline", "PASS_MODULES"]
