"""``python -m repro.analysis.flow`` — the verifier's command line.

Exit-code contract (same family as the linter, relied on by
``scripts/ci.sh``):

* ``0`` — no **new** findings (baselined/suppressed ones don't fail);
* ``1`` — at least one new finding;
* ``2`` — usage or engine error (unknown pass, nonexistent path,
  unreadable baseline).

The baseline defaults to ``<root>/.flow-baseline.json`` when that file
exists; ``--write-baseline`` accepts the current findings into it
(reviewed debt, not a fix) and ``--no-baseline`` ignores it entirely.
"""

import argparse
import json
import os
import sys

from repro.analysis.flow.baseline import Baseline, BaselineError
from repro.analysis.flow.engine import (
    PASS_MODULES, FlowEngine, FlowUsageError,
)
from repro.analysis.flow.reporters import render_json, render_text

BASELINE_NAME = ".flow-baseline.json"


def _csv(value):
    return [item.strip() for item in value.split(",") if item.strip()]


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro.analysis.flow",
        description="whole-program contract verifier: fingerprint "
                    "drift, determinism taint, fail-secure exception "
                    "flow, catalog provenance "
                    "(see docs/static_analysis.md)")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to analyze "
                             "(e.g. src/repro)")
    parser.add_argument("--root", default=".",
                        help="project root for path scoping and the "
                             "default baseline location (default: cwd)")
    parser.add_argument("--format", choices=["text", "json"],
                        default="text", help="stdout report format")
    parser.add_argument("--json-out", default=None, metavar="FILE",
                        help="also write the JSON payload to this file "
                             "(atomic write)")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help=f"baseline file (default: "
                             f"<root>/{BASELINE_NAME} when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept the current findings into the "
                             "baseline file and exit 0")
    parser.add_argument("--select", type=_csv, default=None,
                        metavar="PASS[,PASS]",
                        help="run only these passes")
    parser.add_argument("--ignore", type=_csv, default=None,
                        metavar="PASS[,PASS]",
                        help="skip these passes")
    parser.add_argument("--list-passes", action="store_true",
                        help="print the registered passes and exit")
    return parser


def _list_passes():
    for name in PASS_MODULES:
        print(f"{name:20s} {PASS_MODULES[name].DESCRIPTION}")
    return 0


def _load_baseline(args):
    if args.no_baseline:
        return None, None
    path = args.baseline or os.path.join(args.root, BASELINE_NAME)
    if args.baseline is None and not os.path.exists(path):
        return None, path
    if not os.path.exists(path):
        if args.write_baseline:
            return Baseline.empty(), path
        raise BaselineError(f"no such baseline: {path}")
    return Baseline.load(path), path


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_passes:
        return _list_passes()
    if not args.paths:
        parser.error("no paths given (try: src/repro)")
    try:
        baseline, baseline_path = _load_baseline(args)
        engine = FlowEngine(root=args.root, select=args.select,
                            ignore=args.ignore)
        result = engine.run(args.paths, baseline=baseline)
    except (FlowUsageError, BaselineError) as exc:
        print(f"repro-flow: error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        target = baseline_path or os.path.join(args.root, BASELINE_NAME)
        merged = Baseline.from_findings(
            result.findings + result.baselined,
            reason="accepted via --write-baseline")
        # keep hand-written reasons for entries that are still live
        existing = {(e["rule"], e["key"]): e
                    for e in (baseline.entries if baseline else [])}
        merged.entries = [existing.get((e["rule"], e["key"]), e)
                          for e in merged.entries]
        merged.save(target)
        print(f"repro-flow: baseline written to {target} "
              f"({len(merged.entries)} entries)")
        return 0
    payload = render_json(result, root=engine.root)
    if args.json_out:
        from repro.runtime.atomic import atomic_write_bytes
        atomic_write_bytes(args.json_out,
                           (json.dumps(payload, indent=2) + "\n").encode())
    if args.format == "json":
        print(json.dumps(payload, indent=2))
    else:
        print(render_text(result))
    return 1 if result.findings else 0


if __name__ == "__main__":
    sys.exit(main())
