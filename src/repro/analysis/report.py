"""Human-readable summaries: corpus statistics, detector quality, the
attack inventory, and a combined markdown report.

These back the CLI's reporting surface and give downstream users a
one-call overview of what a trained system looks like.
"""

from repro.core.interpret import weight_report


def dataset_summary(dataset):
    """Per-category window counts and phase coverage."""
    rows = []
    for category in dataset.categories:
        records = [r for r in dataset.records if r.category == category]
        phases = sorted({r.phase for r in records})
        rows.append({
            "category": category,
            "windows": len(records),
            "label": records[0].label if records else None,
            "phases": phases,
        })
    attack_n, benign_n = dataset.balance_counts()
    return {
        "total_windows": len(dataset),
        "attack_windows": attack_n,
        "benign_windows": benign_n,
        "sample_period": dataset.sample_period,
        "categories": rows,
    }


def detector_summary(detector, dataset):
    """Quality metrics plus the hyperplane's strongest features."""
    raw = dataset.raw_matrix(detector.schema)
    metrics = detector.evaluate(raw, dataset.labels())
    malicious, benign = weight_report(detector, top=6)
    return {
        "name": detector.name,
        "features": detector.schema.dim,
        "threshold": detector.threshold,
        "metrics": metrics,
        "top_malicious_features": malicious,
        "top_benign_features": benign,
        "hardware": detector.hardware_cost(),
    }


def attack_inventory(seeds=(3,), include_extensions=False):
    """Run the corpus and tabulate mechanism + leak status per attack."""
    from repro.attacks import ALL_ATTACKS, EXTENDED_ATTACKS

    classes = ALL_ATTACKS + (EXTENDED_ATTACKS if include_extensions else ())
    rows = []
    for cls in classes:
        for seed in seeds:
            outcome = cls(seed=seed).run()
            rows.append({
                "attack": outcome.name,
                "category": outcome.category,
                "seed": seed,
                "leaked": outcome.leaked,
                "success_rate": outcome.success_rate,
                "cycles": outcome.run.cycles,
            })
    return rows


def markdown_report(dataset, detector, title="EVAX system report"):
    """A self-contained markdown report over a corpus + trained detector."""
    ds = dataset_summary(dataset)
    det = detector_summary(detector, dataset)
    lines = [f"# {title}", ""]
    lines += [
        "## Corpus",
        "",
        f"* {ds['total_windows']} windows "
        f"({ds['attack_windows']} attack / {ds['benign_windows']} benign), "
        f"sampled every {ds['sample_period']} instructions",
        f"* {len(ds['categories'])} classes",
        "",
        "| category | windows | label |",
        "|---|---|---|",
    ]
    for row in ds["categories"]:
        lines.append(f"| {row['category']} | {row['windows']} "
                     f"| {row['label']} |")
    metrics = det["metrics"]
    lines += [
        "",
        "## Detector",
        "",
        f"* `{det['name']}` over {det['features']} features, "
        f"threshold {det['threshold']:.3f}",
        f"* accuracy {metrics['accuracy']:.4f}, AUC {metrics['auc']:.4f}, "
        f"FP rate {metrics['fp_rate']:.4f}, FN rate {metrics['fn_rate']:.4f}",
        f"* hardware: {det['hardware']['weight_storage_bits']} weight bits, "
        f"{det['hardware']['adders']} adder, "
        f"<= {det['hardware']['estimated_transistors']} transistors",
        "",
        "### Strongest malicious-leaning features",
        "",
    ]
    for name, weight in det["top_malicious_features"]:
        lines.append(f"* `{name}` ({weight:+.3f})")
    lines += ["", "### Strongest benign-leaning features", ""]
    for name, weight in det["top_benign_features"]:
        lines.append(f"* `{name}` ({weight:+.3f})")
    return "\n".join(lines) + "\n"
