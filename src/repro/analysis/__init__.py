"""Reporting and summarization over trained artifacts and corpora."""

from repro.analysis.report import (
    attack_inventory, dataset_summary, detector_summary, markdown_report,
)

__all__ = [
    "attack_inventory",
    "dataset_summary",
    "detector_summary",
    "markdown_report",
]
