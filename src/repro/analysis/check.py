"""``python -m repro.analysis`` — combined lint + flow, one parse.

The per-file linter and the whole-program flow verifier both want the
AST of (mostly) the same files.  Run separately they would parse the
tree twice; this runner threads one shared
:class:`~repro.analysis.source.SourceCache` through both engines so
every file is parsed **exactly once per CI run** — the shared-cache
test pins this via :attr:`SourceCache.parses`.

Exit codes compose the two tools' contracts: ``2`` on any usage/engine
error, else ``1`` when either gate fails, else ``0``.  Both JSON
payloads can be written in the same run (``--json-out`` for lint,
``--flow-json-out`` for flow).
"""

import argparse
import json
import os
import sys
import time

from repro.analysis.flow.baseline import Baseline, BaselineError
from repro.analysis.flow.cli import BASELINE_NAME
from repro.analysis.flow.engine import FlowEngine, FlowUsageError
from repro.analysis.flow.reporters import render_json as flow_json
from repro.analysis.flow.reporters import render_text as flow_text
from repro.analysis.lint.engine import LintEngine
from repro.analysis.lint.registry import LintUsageError
from repro.analysis.lint.reporters import render_json as lint_json
from repro.analysis.lint.reporters import render_text as lint_text
from repro.analysis.source import SourceCache


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="combined static-analysis gate: per-file lint plus "
                    "whole-program flow passes over one shared parse "
                    "cache (see docs/static_analysis.md)")
    parser.add_argument("paths", nargs="*",
                        help="paths to lint (e.g. src tests scripts)")
    parser.add_argument("--flow-paths", nargs="+", default=["src/repro"],
                        metavar="PATH",
                        help="paths for the whole-program passes "
                             "(default: src/repro)")
    parser.add_argument("--root", default=".",
                        help="engine root (run from the repo root)")
    parser.add_argument("--json-out", default=None, metavar="FILE",
                        help="write the lint JSON payload here")
    parser.add_argument("--flow-json-out", default=None, metavar="FILE",
                        help="write the flow JSON payload here")
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    if not args.paths:
        parser.error("no lint paths given (try: src tests scripts)")
    cache = SourceCache()
    started = time.perf_counter()
    try:
        lint_engine = LintEngine(root=args.root, cache=cache)
        lint_result = lint_engine.run(args.paths)
        baseline_path = os.path.join(args.root, BASELINE_NAME)
        baseline = Baseline.load(baseline_path) \
            if os.path.exists(baseline_path) else None
        flow_engine = FlowEngine(root=args.root, cache=cache)
        flow_result = flow_engine.run(args.flow_paths, baseline=baseline)
    except (LintUsageError, FlowUsageError, BaselineError) as exc:
        print(f"repro-analysis: error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started
    for target, payload in ((args.json_out,
                             lint_json(lint_result, root=lint_engine.root)),
                            (args.flow_json_out,
                             flow_json(flow_result,
                                       root=flow_engine.root))):
        if target:
            from repro.runtime.atomic import atomic_write_bytes
            atomic_write_bytes(
                target, (json.dumps(payload, indent=2) + "\n").encode())
    print(lint_text(lint_result))
    print(flow_text(flow_result))
    print(f"repro-analysis: {cache.parses} files parsed once, "
          f"{elapsed:.2f}s combined")
    failed = bool(lint_result.failing()) or bool(flow_result.findings)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
