"""Finding and severity model for the contract linter.

A :class:`Finding` is one rule violation pinned to a ``path:line:col``
location.  ``path`` is always relative to the engine root and uses
POSIX separators, so findings serialize identically regardless of where
the engine was invoked from.  The optional ``data`` dict carries
machine-readable fields (the offending counter name, the broken link
target) so wrappers and ops tooling never have to parse ``message``.
"""

from dataclasses import dataclass, field

#: severity levels, ordered; the CLI ``--fail-on`` gate compares ranks
ERROR = "error"
WARNING = "warning"

_SEVERITY_RANK = {WARNING: 0, ERROR: 1}


def severity_rank(severity):
    """Numeric rank for gate comparisons (higher = more severe)."""
    return _SEVERITY_RANK[severity]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str            # engine-root-relative, POSIX separators
    line: int
    col: int
    message: str
    data: dict = field(default=None, compare=False)

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule)

    def location(self):
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self):
        record = {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.data:
            record["data"] = dict(self.data)
        return record
