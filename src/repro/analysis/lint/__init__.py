"""``repro.analysis.lint`` — AST-based contract linter.

A reusable static-analysis engine (rule registry, per-rule severity and
path scoping, inline ``# repro-lint: disable=<rule>`` suppressions,
text/JSON reporters, a strict exit-code contract) plus the shipped
ruleset encoding this repo's invariants:

* **determinism** — no wall-clock reads, module-level/unseeded RNG, or
  bare-set iteration in ``sim/``, ``ml/``, ``core/``, ``data/``;
* **atomic IO** — no raw write-mode ``open`` outside
  ``runtime/atomic.py`` and ``obs/``;
* **catalog hygiene** — counter/metric/event name literals must exist
  in ``repro.sim.hpc.COUNTER_NAMES`` / ``repro.obs.names``;
* **error contracts** — no swallowing ``except Exception``;
* **docs links** — relative Markdown links must resolve.

Run it: ``python -m repro.analysis.lint src tests scripts``.
Design, rule table, and how to add a rule: ``docs/static_analysis.md``.
"""

from repro.analysis.lint.engine import (
    FileContext, LintEngine, LintResult, run_lint,
)
from repro.analysis.lint.findings import ERROR, WARNING, Finding
from repro.analysis.lint.registry import (
    LintUsageError, Rule, default_rules, register, resolve_rules,
)
from repro.analysis.lint.reporters import (
    JSON_SCHEMA, render_json, render_text,
)

__all__ = [
    "ERROR",
    "WARNING",
    "Finding",
    "FileContext",
    "JSON_SCHEMA",
    "LintEngine",
    "LintResult",
    "LintUsageError",
    "Rule",
    "default_rules",
    "register",
    "render_json",
    "render_text",
    "resolve_rules",
    "run_lint",
]
