"""Rule base class and the global rule registry.

Rules register themselves at import time with the :func:`register`
decorator; :func:`default_rules` imports the shipped ruleset package
(``repro.analysis.lint.rules``) so registration is a side effect of the
first call, and returns one fresh instance per registered rule, sorted
by name for deterministic engine output.
"""

from repro.analysis.lint.findings import ERROR, Finding


class LintUsageError(ValueError):
    """Bad engine input (unknown rule name, nonexistent path)."""


_REGISTRY = {}


def register(cls):
    """Class decorator: add a :class:`Rule` subclass to the registry."""
    if not cls.name:
        raise ValueError(f"rule class {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


class Rule:
    """One lintable contract.

    Subclasses set the class attributes and implement :meth:`check`,
    a generator of :class:`Finding` objects for one file context.

    ``include``/``exclude`` are engine-root-relative POSIX path
    prefixes: a rule applies to a file when the file is under some
    ``include`` prefix (or ``include`` is empty) and under no
    ``exclude`` prefix.  ``file_kinds`` selects which discovered file
    kinds (``"python"``, ``"markdown"``) the rule sees at all.
    """

    name = None
    severity = ERROR
    description = ""          # one line, shown by --list-rules / JSON
    rationale = ""            # why the contract exists (docs)
    file_kinds = ("python",)
    include = ()
    exclude = ()

    def applies_to(self, relpath):
        """Whether this rule runs on the file at ``relpath``."""
        if any(relpath == p or relpath.startswith(p) for p in self.exclude):
            return False
        if not self.include:
            return True
        return any(relpath == p or relpath.startswith(p)
                   for p in self.include)

    def check(self, ctx):
        """Yield :class:`Finding` objects for one :class:`FileContext`."""
        raise NotImplementedError

    # -- helpers for subclasses --------------------------------------------

    def finding(self, ctx, line, col, message, data=None):
        return Finding(rule=self.name, severity=self.severity,
                       path=ctx.relpath, line=line, col=col,
                       message=message, data=data)

    def finding_at(self, ctx, node, message, data=None):
        """Finding anchored at an AST node (1-based column)."""
        return self.finding(ctx, node.lineno, node.col_offset + 1,
                            message, data=data)


def default_rules():
    """Fresh instances of every registered rule, sorted by name."""
    from repro.analysis.lint import rules as _rules  # noqa: F401 (registers)
    return [cls() for _, cls in sorted(_REGISTRY.items())]


def resolve_rules(select=None, ignore=None):
    """The default ruleset narrowed by ``--select`` / ``--ignore``.

    Raises :class:`LintUsageError` on a name that matches no rule, so a
    typo'd filter fails loudly instead of silently linting nothing.
    """
    rules = default_rules()
    known = {r.name for r in rules}
    for requested in list(select or ()) + list(ignore or ()):
        if requested not in known:
            raise LintUsageError(
                f"unknown rule {requested!r}; known rules: "
                f"{', '.join(sorted(known))}")
    if select:
        rules = [r for r in rules if r.name in set(select)]
    if ignore:
        rules = [r for r in rules if r.name not in set(ignore)]
    return rules
