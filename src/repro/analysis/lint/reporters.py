"""Text and JSON renderers for a :class:`LintResult`.

The JSON payload is schema-versioned (``repro-lint/1``) so run
manifests and ops tooling can ingest findings without parsing the
human-oriented text output; ``tests/analysis/test_lint_rules.py`` pins
the schema.
"""

from repro.analysis.lint.findings import ERROR, WARNING

JSON_SCHEMA = "repro-lint/1"


def render_text(result):
    """Human-readable report: one ``path:line:col`` line per finding
    plus a one-line summary."""
    lines = [f"{f.location()}: [{f.severity}] {f.rule}: {f.message}"
             for f in result.findings]
    files = sum(result.files.values())
    by_kind = ", ".join(f"{n} {kind}" for kind, n in
                        sorted(result.files.items()))
    counts = result.counts_by_severity()
    if result.findings:
        lines.append(
            f"repro-lint: {len(result.findings)} finding(s) "
            f"({counts.get(ERROR, 0)} error, {counts.get(WARNING, 0)} "
            f"warning) in {files} files ({by_kind}); "
            f"{result.suppressed} suppressed")
    else:
        lines.append(
            f"repro-lint: clean — {files} files ({by_kind}), "
            f"{len(result.rules)} rules, {result.suppressed} suppressed")
    return "\n".join(lines)


def render_json(result, root=None):
    """JSON-serializable dict of the full run outcome."""
    counts = result.counts_by_severity()
    return {
        "schema": JSON_SCHEMA,
        "root": str(root) if root is not None else None,
        "files": dict(result.files),
        "rules": [{"name": rule.name, "severity": rule.severity,
                   "description": rule.description}
                  for rule in result.rules],
        "summary": {
            "findings": len(result.findings),
            "error": counts.get(ERROR, 0),
            "warning": counts.get(WARNING, 0),
            "suppressed": result.suppressed,
        },
        "findings": [f.to_dict() for f in result.findings],
    }
