"""Catalog-hygiene rules.

Three name catalogs are contracts between code, docs, and ops tooling:

* ``repro.sim.hpc.COUNTER_NAMES`` — every HPC the simulator may bump;
* ``repro.obs.names.ALL_METRICS`` — every metric the instrumentation
  may emit;
* ``repro.obs.names.EVENTS`` — every structured-log event name.

``CounterBank.bump`` and the registry raise on unknown names, but only
when the site first *fires* — a typo on a cold path (a trap counter, a
defense-mode-only stall, an error-path event) survives the whole test
suite and then crashes a long collection run.  These rules resolve
every statically-visible name literal against its catalog at lint
time.  Dynamically built names (f-strings such as the per-cache
``f"{prefix}.cleanEvicts"`` or ``f"runner.failures.{kind}"``) cannot be
checked statically and are skipped — keep counter ones behind a
``CounterBank.has`` guard.
"""

import ast
import difflib

from repro.analysis.lint.astutil import call_callee, first_str_arg
from repro.analysis.lint.registry import Rule, register

#: method/function names whose first string-literal argument is a
#: counter name.  ``get`` is only counter-related on a CounterBank; a
#: dict ``.get("other")`` is recognizable because every counter name is
#: namespaced (dotted) and no dict key under sim/ is — so ``get``
#: literals are checked only when they contain a dot.
COUNTER_CALLS = frozenset({"bump", "index_of", "has", "_IX"})
COUNTER_DOTTED_ONLY = frozenset({"get"})

#: registry methods whose first string-literal argument is a metric
#: name (``set`` is dotted-only: ``Gauge.set(value)`` takes no name,
#: but ``MetricsRegistry.set("a.b", value)`` does).
METRIC_CALLS = frozenset({"inc", "counter", "gauge", "timer", "time_block"})
METRIC_DOTTED_ONLY = frozenset({"set"})

#: emitters whose first string-literal argument is an event name
EVENT_CALLS = frozenset({"obs_event"})
EVENT_DOTTED_ONLY = frozenset({"event"})


def iter_name_literals(tree, calls, dotted_only=frozenset()):
    """Yield ``(literal, node)`` for every statically-visible name
    literal passed to one of ``calls`` / ``dotted_only``."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        callee = call_callee(node)
        if callee not in calls and callee not in dotted_only:
            continue
        literal = first_str_arg(node)
        if literal is None:
            continue  # dynamic name (f-string etc.): not checkable
        if callee in dotted_only and "." not in literal:
            continue  # un-namespaced literal: not a catalog name
        yield literal, node


def iter_counter_literals(tree):
    """``(name, lineno)`` pairs of counter-name literals — the exact
    extraction ``scripts/check_counters.py`` has always performed."""
    for literal, node in iter_name_literals(tree, COUNTER_CALLS,
                                            COUNTER_DOTTED_ONLY):
        yield literal, node.lineno


def _suggest(name, known):
    close = difflib.get_close_matches(name, sorted(known), n=2)
    return f" (did you mean {' or '.join(map(repr, close))}?)" if close \
        else ""


class _CatalogRule(Rule):
    """Shared machinery: resolve extracted literals against a catalog."""

    calls = frozenset()
    dotted_only = frozenset()
    catalog_label = ""

    def known_names(self):
        raise NotImplementedError

    def check(self, ctx):
        known = self.known_names()
        for literal, node in iter_name_literals(ctx.tree, self.calls,
                                                self.dotted_only):
            if literal not in known:
                yield self.finding_at(
                    ctx, node,
                    f"unknown {self.catalog_label} {literal!r}"
                    f"{_suggest(literal, known)}",
                    data={"name": literal})


@register
class CatalogCountersRule(_CatalogRule):
    """Every counter-name literal under sim/ exists in COUNTER_NAMES."""

    name = "catalog-counters"
    description = ("counter-name literal not in repro.sim.hpc."
                   "COUNTER_NAMES")
    rationale = ("the optimized core preresolves names to slots at import "
                 "time, but any literal only a cold path touches would "
                 "crash mid-collection the first time it fires")
    include = ("src/repro/sim/",)
    calls = COUNTER_CALLS
    dotted_only = COUNTER_DOTTED_ONLY
    catalog_label = "counter name (not in COUNTER_NAMES)"

    def known_names(self):
        from repro.sim.hpc import COUNTER_NAMES
        return frozenset(COUNTER_NAMES)


@register
class CatalogMetricsRule(_CatalogRule):
    """Every metric-name literal exists in the obs catalog."""

    name = "catalog-metrics"
    description = ("metric-name literal not in repro.obs.names."
                   "ALL_METRICS")
    rationale = ("docs/observability.md and the manifest tooling are "
                 "checked against the catalog; an uncataloged literal is a "
                 "metric dashboards will never find")
    include = ("src/repro/",)
    calls = METRIC_CALLS
    dotted_only = METRIC_DOTTED_ONLY
    catalog_label = "metric name (not in obs/names.py CATALOG)"

    def known_names(self):
        from repro.obs.names import ALL_METRICS
        return frozenset(ALL_METRICS)


@register
class CatalogEventsRule(_CatalogRule):
    """Every event-name literal exists in the obs event catalog."""

    name = "catalog-events"
    description = "event-name literal not in repro.obs.names.EVENTS"
    rationale = ("log consumers join events back to run manifests by "
                 "cataloged name; an uncataloged event is invisible to "
                 "every documented query")
    include = ("src/repro/",)
    calls = EVENT_CALLS
    dotted_only = EVENT_DOTTED_ONLY
    catalog_label = "event name (not in obs/names.py EVENTS)"

    def known_names(self):
        from repro.obs.names import EVENTS
        return frozenset(EVENTS)
