"""Concurrency rule: all fan-out goes through the resilient runner.

PR 1 replaced the repo's bare ``multiprocessing.Pool`` with
:class:`repro.runtime.TaskRunner` precisely because a pool offers none
of the resilience contract: no per-task isolation (one segfault poisons
the whole map), no per-task timeout, no deterministic-backoff retries,
no failure taxonomy.  The campaign layer (PR 6) stakes its graceful-
degradation guarantees on every worker going through the runner, so
this rule bans direct pool/process construction statically — a new
``ProcessPoolExecutor`` sneaking into ``data/`` or ``campaign/`` would
silently reopen the one-bad-worker-kills-the-build failure class.
"""

import ast

from repro.analysis.lint.astutil import dotted_name
from repro.analysis.lint.registry import Rule, register

#: module roots whose import marks a file as doing raw fan-out
_POOL_MODULES = ("multiprocessing", "concurrent")

#: constructor names that create worker pools / processes
_POOL_CALLS = {"Pool", "ThreadPool", "ProcessPoolExecutor",
               "ThreadPoolExecutor", "Process"}


@register
class RunnerFanoutRule(Rule):
    """No direct multiprocessing / concurrent.futures fan-out outside
    the runtime layer."""

    name = "runner-fanout"
    description = ("direct multiprocessing/concurrent.futures pool or "
                   "process construction outside runtime/")
    rationale = ("bare pools have no worker isolation, timeouts, retries "
                 "or failure taxonomy; all fan-out must go through the "
                 "resilient repro.runtime.TaskRunner so one bad worker "
                 "degrades one task, never the run")
    include = ("src/repro/",)
    exclude = ("src/repro/runtime/",)

    def _imports_pool_module(self, ctx):
        """Whether the file imports multiprocessing / concurrent.futures
        (directly or as a submodule / from-import)."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.partition(".")[0] in _POOL_MODULES:
                        return True
            elif isinstance(node, ast.ImportFrom):
                if node.module and \
                        node.module.partition(".")[0] in _POOL_MODULES:
                    return True
        return False

    def check(self, ctx):
        if not self._imports_pool_module(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            if dotted.rsplit(".", 1)[-1] in _POOL_CALLS:
                yield self.finding_at(
                    ctx, node,
                    f"direct `{dotted}(...)` fan-out; route parallel "
                    f"work through repro.runtime.TaskRunner (worker "
                    f"isolation, timeouts, retries, failure taxonomy)",
                    data={"call": dotted})
