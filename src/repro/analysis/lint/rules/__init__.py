"""The shipped ruleset.

Importing this package registers every rule with the global registry
(see :mod:`repro.analysis.lint.registry`).  To add a rule: implement a
:class:`~repro.analysis.lint.registry.Rule` subclass in a module here
(or anywhere), decorate it with ``@register``, and import the module
below.  ``docs/static_analysis.md`` documents the full recipe.
"""

from repro.analysis.lint.rules import (  # noqa: F401  (registration)
    atomic_io,
    catalog,
    concurrency,
    determinism,
    docs,
    errors,
)
