"""Determinism rules.

The reproduction's core claims — bit-identical counter streams between
the optimized and reference cores, bit-exact checkpoint/resume, stable
feature matrices — all die the moment simulation, training, or feature
code reads a wall clock or an unseeded RNG.  PerSpectron-style HPC
detectors are only as trustworthy as the determinism of the traces that
feed them (FortuneTeller, Gulmezoglu et al. 2019), so these rules ban
the nondeterminism sources statically in the layers that produce
counters, features, and model state: ``sim/``, ``ml/``, ``core/``,
``data/``, and — since the arena made fuzzed attack programs a training
input — ``attacks/`` (every fuzzer/evasion draw must come from an
explicitly seeded ``random.Random``).

``time.perf_counter``/``time.monotonic`` stay legal: they feed obs
timers only, never counters or features.
"""

import ast

from repro.analysis.lint.astutil import dotted_name
from repro.analysis.lint.registry import Rule, register

#: the layers whose outputs must be a pure function of (workload, seed)
DETERMINISTIC_SCOPE = ("src/repro/sim/", "src/repro/ml/",
                       "src/repro/core/", "src/repro/data/",
                       "src/repro/attacks/", "src/repro/arena/")


@register
class ForbiddenClockRule(Rule):
    """No wall-clock reads in counter/feature/model-producing code."""

    name = "forbidden-clock"
    description = ("wall-clock read (time.time / datetime.now / ...) in "
                   "deterministic code")
    rationale = ("counter streams and training trajectories must be a pure "
                 "function of (workload, seed); wall-clock values leak into "
                 "features and break bit-exact replay/resume")
    include = DETERMINISTIC_SCOPE

    _WALL_CLOCK = {"time.time", "time.time_ns", "time.ctime",
                   "time.localtime", "time.gmtime", "time.strftime"}
    _DATETIME_FNS = {"now", "utcnow", "today"}

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            named = None
            if dotted in self._WALL_CLOCK:
                named = dotted
            elif parts[-1] in self._DATETIME_FNS and (
                    "datetime" in parts[:-1] or "date" in parts[:-1]):
                named = dotted
            if named is not None:
                yield self.finding_at(
                    ctx, node,
                    f"wall-clock read `{named}()` in deterministic code; "
                    f"timestamps belong to the obs layer (elapsed-time "
                    f"measurement may use time.perf_counter/monotonic)",
                    data={"call": named})


@register
class UnseededRngRule(Rule):
    """No module-level / unseeded RNG in deterministic code."""

    name = "unseeded-rng"
    description = ("module-level or unseeded RNG (np.random.<fn>, "
                   "random.<fn>, default_rng()) in deterministic code")
    rationale = ("the global NumPy/stdlib RNG is shared mutable state: any "
                 "import-order or call-order change silently reshuffles "
                 "every downstream draw; all randomness must flow from an "
                 "explicitly seeded np.random.default_rng(seed)")
    include = DETERMINISTIC_SCOPE

    _NP_GLOBAL = {"rand", "randn", "randint", "random", "random_sample",
                  "ranf", "sample", "choice", "shuffle", "permutation",
                  "uniform", "normal", "standard_normal", "seed", "bytes",
                  "exponential", "poisson", "binomial", "beta", "gamma"}
    _PY_RANDOM = {"random", "randint", "randrange", "choice", "choices",
                  "shuffle", "sample", "uniform", "gauss", "normalvariate",
                  "expovariate", "betavariate", "triangular", "seed",
                  "getrandbits", "vonmisesvariate"}

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            unseeded = not node.args and not node.keywords
            message = None
            if len(parts) == 3 and parts[0] in ("np", "numpy") \
                    and parts[1] == "random":
                fn = parts[2]
                if fn in ("default_rng", "RandomState"):
                    if unseeded:
                        message = (f"unseeded `{dotted}()`; pass an explicit "
                                   f"seed so runs replay bit-exactly")
                elif fn in self._NP_GLOBAL:
                    message = (f"module-level NumPy RNG `{dotted}(...)` "
                               f"draws from shared global state; use a "
                               f"seeded np.random.default_rng(seed)")
            elif len(parts) == 2 and parts[0] == "random":
                if parts[1] == "Random":
                    if unseeded:
                        message = ("unseeded `random.Random()`; pass an "
                                   "explicit seed")
                elif parts[1] in self._PY_RANDOM:
                    message = (f"module-level stdlib RNG `{dotted}(...)` "
                               f"draws from shared global state; use a "
                               f"seeded generator")
            if message is not None:
                yield self.finding_at(ctx, node, message,
                                      data={"call": dotted})


@register
class SetIterationRule(Rule):
    """No iteration over bare sets in counter/feature-producing code."""

    name = "set-iteration"
    description = ("iteration over an unordered set() / set literal in "
                   "deterministic code")
    rationale = ("set iteration order depends on insertion history and (for "
                 "str keys) on PYTHONHASHSEED, so any counter or feature "
                 "derived from it differs between runs; wrap in sorted(...)")
    include = DETERMINISTIC_SCOPE

    def _iterables(self, node):
        if isinstance(node, ast.For):
            return [node.iter]
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            return [gen.iter for gen in node.generators]
        return []

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            for it in self._iterables(node):
                bare = isinstance(it, (ast.Set, ast.SetComp)) or (
                    isinstance(it, ast.Call)
                    and isinstance(it.func, ast.Name)
                    and it.func.id in ("set", "frozenset"))
                if bare:
                    yield self.finding_at(
                        ctx, it,
                        "iteration over an unordered set in deterministic "
                        "code; wrap it in sorted(...) for a stable order")
