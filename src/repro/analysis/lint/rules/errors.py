"""Error-contract rule.

The pipeline's failure taxonomy (crash / timeout / divergent, guard
trips, fail-secure latches) only works because errors surface as typed
exceptions at the layer that can classify them.  A broad ``except
Exception`` that swallows — no re-raise, no typed conversion — hides
faults from that machinery.  The two places broad catches are
legitimate (the worker-isolation boundary in ``runtime/runner.py``, the
fail-secure watchdog latch in ``defenses/controller.py``) carry
documented ``# repro-lint: disable=broad-except`` suppressions.
"""

import ast

from repro.analysis.lint.astutil import dotted_name
from repro.analysis.lint.registry import Rule, register

_BROAD = {"Exception", "BaseException"}


def _broad_name(handler):
    """The broad exception name a handler catches, or ``None``."""
    if handler.type is None:
        return "<bare except>"
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) \
        else [handler.type]
    for node in types:
        dotted = dotted_name(node)
        if dotted is not None and dotted.split(".")[-1] in _BROAD:
            return dotted
    return None


@register
class BroadExceptRule(Rule):
    """No swallowing ``except Exception`` / bare ``except``."""

    name = "broad-except"
    description = ("broad `except Exception` / bare except that swallows "
                   "(never raises)")
    rationale = ("the runtime's crash/timeout/divergent taxonomy and the "
                 "training guard can only classify faults that reach them "
                 "as exceptions; a swallowed broad catch turns a real fault "
                 "into silent bad data")
    include = ("src/repro/",)

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = _broad_name(node)
            if caught is None:
                continue
            # a handler that raises (re-raise or typed conversion) is
            # narrowing, not swallowing
            if any(isinstance(sub, ast.Raise) for sub in ast.walk(node)):
                continue
            yield self.finding(
                ctx, node.lineno, node.col_offset + 1,
                f"broad `except {caught}` swallows errors; catch a "
                f"specific type, or add `# repro-lint: "
                f"disable=broad-except` with a justification",
                data={"caught": caught})
