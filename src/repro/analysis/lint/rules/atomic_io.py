"""Atomic-IO rule.

Every durable artifact in this repo (datasets, detector envelopes,
checkpoint shards, manifests, reports) is written via
``repro.runtime.atomic`` — write-to-temp + ``os.replace`` + SHA-256 —
so a crash or kill mid-write can never leave a torn file under the
final name.  A raw ``open(path, "w")`` anywhere else reintroduces
exactly the torn-artifact class PR 1 eliminated; this rule bans it
statically.
"""

import ast

from repro.analysis.lint.astutil import call_callee, dotted_name
from repro.analysis.lint.registry import Rule, register


@register
class AtomicIoRule(Rule):
    """No raw write-mode ``open`` outside the atomic-IO layer."""

    name = "atomic-io"
    description = ('raw open(..., "w") / Path.write_text outside '
                   'runtime/atomic.py and obs/')
    rationale = ("a crash between open('w') and close leaves a torn file "
                 "under the final artifact name; durable writes must go "
                 "through repro.runtime.atomic (temp file + os.replace)")
    include = ("src/repro/",)
    # the atomic layer itself, and the obs sinks: JSONL logs are
    # append-only streams (torn tails are tolerated by the reader) and
    # manifests/metrics snapshots already route through runtime.atomic
    exclude = ("src/repro/runtime/atomic.py", "src/repro/obs/")

    _WRITE_METHODS = {"write_text", "write_bytes"}

    def _open_mode(self, call):
        """The mode string literal of an ``open``-family call, if any."""
        mode = None
        if len(call.args) >= 2:
            mode = call.args[1]
        for keyword in call.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value
        return None

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = call_callee(node)
            if callee in self._WRITE_METHODS:
                yield self.finding_at(
                    ctx, node,
                    f"raw `.{callee}(...)` write; route durable artifacts "
                    f"through repro.runtime.atomic",
                    data={"call": callee})
                continue
            dotted = dotted_name(node.func)
            if dotted not in ("open", "io.open"):
                continue
            mode = self._open_mode(node)
            if mode is not None and mode[:1] in ("w", "x"):
                yield self.finding_at(
                    ctx, node,
                    f'raw `open(..., "{mode}")` write; route durable '
                    f"artifacts through repro.runtime.atomic "
                    f"(write-to-temp + os.replace)",
                    data={"mode": mode})
