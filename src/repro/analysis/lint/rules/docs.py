"""Documentation hygiene: the one non-AST rule in the shipped set.

Migrated from ``scripts/check_docs.py`` (which remains as a thin
wrapper): every relative ``[text](target)`` link in a Markdown file
must resolve on disk.  External links (``http(s)://``, ``mailto:``)
and pure anchors are skipped; an anchor suffix on a relative link is
stripped before the existence check.
"""

import re

from repro.analysis.lint.registry import Rule, register

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_EXTERNAL = ("http://", "https://", "mailto:", "#")


@register
class DocsLinksRule(Rule):
    """Relative Markdown links must point at existing files."""

    name = "docs-links"
    description = "broken relative link in a Markdown file"
    rationale = ("docs are part of the observability/ops contract; a "
                 "broken cross-link is a dead runbook step")
    file_kinds = ("markdown",)

    def check(self, ctx):
        for lineno, line in enumerate(ctx.lines, 1):
            for match in _LINK.finditer(line):
                target = match.group(1)
                if target.startswith(_EXTERNAL):
                    continue
                relative = target.split("#", 1)[0]
                if relative and not (ctx.path.parent / relative).exists():
                    yield self.finding(
                        ctx, lineno, match.start(1) + 1,
                        f"broken link -> {target}",
                        data={"target": target})
