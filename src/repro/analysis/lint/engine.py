"""The lint engine: file discovery, parsing, rule dispatch.

One :class:`LintEngine` owns a ruleset and an engine root (the repo
root in normal use).  :meth:`LintEngine.run` walks the given paths,
builds one :class:`FileContext` per discovered file, parses Python
files once (shared by every AST rule), applies inline suppressions,
and returns a :class:`LintResult` with deterministically sorted
findings.

Scoped rules (``Rule.include``/``exclude``) key off paths relative to
the engine root, e.g. ``src/repro/sim/`` — run the engine from the
repo root (or pass ``root=``) so those prefixes line up.
"""

import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.lint.findings import ERROR, Finding, severity_rank
from repro.analysis.lint.registry import LintUsageError, resolve_rules
from repro.analysis.lint.suppress import is_suppressed, suppressions
from repro.analysis.source import SourceCache

#: directories never descended into during discovery
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules",
             ".venv", "venv", ".eggs", ".hypothesis", ".mypy_cache",
             ".ruff_cache"}

#: file suffix -> kind handed to rules via ``Rule.file_kinds``
KINDS = {".py": "python", ".md": "markdown"}

#: engine-level pseudo-rule for unparseable Python files
PARSE_ERROR_RULE = "parse-error"


class FileContext:
    """Everything a rule may need about one file (AST built lazily,
    shared across rules — and, via the :class:`SourceCache`, across
    tools running in the same process)."""

    def __init__(self, path, root, kind, cache=None):
        self.path = Path(path)
        self.root = Path(root)
        self.kind = kind
        self.relpath = _relpath(self.path, self.root)
        # explicit None-check: an empty SourceCache is falsy (__len__)
        cache = cache if cache is not None else SourceCache()
        self._source = cache.get(self.path)
        self.text = self._source.text
        self.lines = self._source.lines

    @property
    def tree(self):
        """The parsed AST (raises ``SyntaxError`` on a broken file)."""
        return self._source.tree


@dataclass
class LintResult:
    """Outcome of one engine run."""

    findings: list
    files: dict                 # kind -> count of files checked
    suppressed: int
    rules: list = field(default_factory=list)

    def counts_by_severity(self):
        counts = {}
        for finding in self.findings:
            counts[finding.severity] = counts.get(finding.severity, 0) + 1
        return counts

    def failing(self, fail_on=ERROR):
        """Findings at or above the gate severity."""
        gate = severity_rank(fail_on)
        return [f for f in self.findings
                if severity_rank(f.severity) >= gate]


def _relpath(path, root):
    return os.path.relpath(os.path.abspath(path),
                           os.path.abspath(root)).replace(os.sep, "/")


def _skip(path):
    return bool(SKIP_DIRS.intersection(path.parts)) or \
        any(part.endswith(".egg-info") for part in path.parts)


class LintEngine:
    """Run a ruleset over a file tree."""

    def __init__(self, rules=None, root=None, cache=None):
        self.rules = list(rules) if rules is not None else resolve_rules()
        self.root = Path(root or os.getcwd()).resolve()
        self.cache = cache if cache is not None else SourceCache()
        #: only discover kinds some active rule can act on
        self.kinds = {kind for rule in self.rules
                      for kind in rule.file_kinds}

    # -- discovery ---------------------------------------------------------

    def discover(self, paths):
        """Yield ``(path, kind)`` for every lintable file under
        ``paths`` (files or directories), sorted for determinism."""
        found = []
        for raw in paths:
            path = Path(raw)
            if not path.exists():
                raise LintUsageError(f"no such path: {raw}")
            if path.is_file():
                kind = KINDS.get(path.suffix)
                if kind in self.kinds:
                    found.append((path, kind))
                continue
            for suffix, kind in KINDS.items():
                if kind not in self.kinds:
                    continue
                for child in path.rglob(f"*{suffix}"):
                    if not _skip(child.relative_to(path)):
                        found.append((child, kind))
        unique = {os.path.abspath(p): (Path(p), kind) for p, kind in found}
        return [unique[key] for key in sorted(unique)]

    # -- execution ---------------------------------------------------------

    def run(self, paths):
        findings = []
        files = {kind: 0 for kind in sorted(self.kinds)}
        suppressed = 0
        for path, kind in self.discover(paths):
            ctx = FileContext(path, self.root, kind, cache=self.cache)
            files[kind] += 1
            active = [rule for rule in self.rules
                      if kind in rule.file_kinds
                      and rule.applies_to(ctx.relpath)]
            if not active:
                continue
            if kind == "python":
                try:
                    ctx.tree
                except SyntaxError as exc:
                    findings.append(Finding(
                        rule=PARSE_ERROR_RULE, severity=ERROR,
                        path=ctx.relpath, line=exc.lineno or 1,
                        col=exc.offset or 1,
                        message=f"syntax error: {exc.msg}"))
                    continue
            table = suppressions(ctx.text)
            for rule in active:
                for finding in rule.check(ctx):
                    if is_suppressed(table, finding):
                        suppressed += 1
                    else:
                        findings.append(finding)
        findings.sort(key=Finding.sort_key)
        return LintResult(findings=findings, files=files,
                          suppressed=suppressed, rules=self.rules)


def run_lint(paths, root=None, select=None, ignore=None):
    """One-call convenience: resolve rules, build an engine, run it."""
    rules = resolve_rules(select=select, ignore=ignore)
    return LintEngine(rules=rules, root=root).run(paths)
