"""Entry point: ``python -m repro.analysis.lint <paths>``."""

import sys

from repro.analysis.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
