"""Small AST helpers shared by the rule implementations."""

import ast


def dotted_name(node):
    """Render a pure ``Name``/``Attribute`` chain as ``"a.b.c"``.

    Returns ``None`` for anything else (subscripts, calls, literals) —
    rules treat those as dynamic and skip them.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_callee(call):
    """The last component of a call target (method or function name)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def first_str_arg(call):
    """The first positional argument if it is a string literal, else
    ``None`` (f-strings and variables are dynamic — not checkable)."""
    if call.args:
        arg = call.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
    return None
