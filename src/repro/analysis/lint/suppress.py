"""Inline suppression comments.

Syntax::

    stamp = now()  # repro-lint: disable=forbidden-clock
    # repro-lint: disable=broad-except -- user validator may raise anything
    except Exception as exc:

A directive on a code line suppresses the named rules on that line; a
directive on a standalone comment line suppresses them on the next
line.  ``disable=all`` suppresses every rule.  Anything after the rule
list (conventionally ``-- why``) is a free-form justification and is
ignored by the parser — but write one: a suppression without a reason
is a finding waiting to come back.
"""

import re

_DIRECTIVE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\-]+)")


def suppressions(text):
    """Map ``{lineno: {rule, ...}}`` of suppressed rules per line."""
    table = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        match = _DIRECTIVE.search(line)
        if match is None:
            continue
        rules = {name.strip() for name in match.group(1).split(",")
                 if name.strip()}
        # a comment-only line shields the line it precedes
        target = lineno + 1 if line.lstrip().startswith("#") else lineno
        table.setdefault(target, set()).update(rules)
    return table


def is_suppressed(table, finding):
    """Whether ``finding`` is silenced by an inline directive."""
    rules = table.get(finding.line, ())
    return finding.rule in rules or "all" in rules
