"""``python -m repro.analysis.lint`` — the linter's command line.

Exit-code contract (relied on by ``scripts/ci.sh`` and the wrapper
scripts):

* ``0`` — no findings at or above the ``--fail-on`` gate;
* ``1`` — at least one gated finding (each printed as
  ``path:line:col``);
* ``2`` — usage error (unknown rule, nonexistent path, bad flags).

``--json-out`` always writes the machine-readable payload (atomically,
via :mod:`repro.runtime.atomic`) regardless of ``--format``, so CI can
show text to humans and hand JSON to manifests/ops tooling in one run.
"""

import argparse
import json
import sys

from repro.analysis.lint.engine import LintEngine
from repro.analysis.lint.findings import ERROR, WARNING
from repro.analysis.lint.registry import LintUsageError, resolve_rules
from repro.analysis.lint.reporters import render_json, render_text


def _csv(value):
    return [item.strip() for item in value.split(",") if item.strip()]


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro.analysis.lint",
        description="AST-based contract linter: determinism, atomic IO, "
                    "catalog hygiene, error contracts, docs links "
                    "(see docs/static_analysis.md)")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(e.g. src tests scripts)")
    parser.add_argument("--root", default=".",
                        help="engine root for rule path scoping "
                             "(default: cwd; run from the repo root)")
    parser.add_argument("--format", choices=["text", "json"],
                        default="text", help="stdout report format")
    parser.add_argument("--json-out", default=None, metavar="FILE",
                        help="also write the JSON payload to this file "
                             "(atomic write)")
    parser.add_argument("--select", type=_csv, default=None,
                        metavar="RULE[,RULE]",
                        help="run only these rules")
    parser.add_argument("--ignore", type=_csv, default=None,
                        metavar="RULE[,RULE]",
                        help="skip these rules")
    parser.add_argument("--fail-on", choices=[ERROR, WARNING],
                        default=ERROR,
                        help="lowest severity that fails the run "
                             "(default: error)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    return parser


def _list_rules():
    for rule in resolve_rules():
        scope = ", ".join(rule.include) if rule.include else "(everywhere)"
        print(f"{rule.name:18s} {rule.severity:7s} "
              f"[{'/'.join(rule.file_kinds)}] {scope}")
        print(f"{'':18s} {rule.description}")
    return 0


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        return _list_rules()
    if not args.paths:
        parser.error("no paths given (try: src tests scripts)")
    try:
        rules = resolve_rules(select=args.select, ignore=args.ignore)
        engine = LintEngine(rules=rules, root=args.root)
        result = engine.run(args.paths)
    except LintUsageError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    payload = render_json(result, root=engine.root)
    if args.json_out:
        from repro.runtime.atomic import atomic_write_bytes
        atomic_write_bytes(args.json_out,
                           (json.dumps(payload, indent=2) + "\n").encode())
    if args.format == "json":
        print(json.dumps(payload, indent=2))
    else:
        print(render_text(result))
    return 1 if result.failing(args.fail_on) else 0


if __name__ == "__main__":
    sys.exit(main())
