"""Shared source/AST cache for the static-analysis tools.

Both the per-file contract linter (:mod:`repro.analysis.lint`) and the
whole-program flow verifier (:mod:`repro.analysis.flow`) need the text
and parsed AST of every Python file in the tree.  Parsing dominates
their wall-clock, so when the two run in one process (the combined
``python -m repro.analysis`` runner that ``scripts/ci.sh`` invokes)
they share one :class:`SourceCache`: each file is read and parsed
**exactly once**, regardless of how many tools or passes consume it.

``parses`` counts actual ``ast.parse`` calls — the cache-sharing tests
pin that it never exceeds the number of distinct files.
"""

import ast
import os


class SourceFile:
    """One file's text, split lines, and lazily-parsed AST.

    ``tree`` raises ``SyntaxError`` for a broken file, exactly like
    calling ``ast.parse`` directly — consumers decide whether that is a
    finding (the lint engine) or a skipped module (the flow index).
    """

    def __init__(self, path, cache=None):
        self.path = path
        with open(path, "r", encoding="utf-8") as f:
            self.text = f.read()
        self.lines = self.text.splitlines()
        self._tree = None
        self._error = None
        self._cache = cache

    @property
    def tree(self):
        if self._error is not None:
            raise self._error
        if self._tree is None:
            if self._cache is not None:
                self._cache.parses += 1
            try:
                self._tree = ast.parse(self.text, filename=str(self.path))
            except SyntaxError as exc:
                self._error = exc
                raise
        return self._tree


class SourceCache:
    """Process-wide ``abspath -> SourceFile`` cache."""

    def __init__(self):
        self._files = {}
        self.parses = 0          # actual ast.parse calls performed

    def __len__(self):
        return len(self._files)

    def get(self, path):
        key = os.path.abspath(path)
        sf = self._files.get(key)
        if sf is None:
            sf = self._files[key] = SourceFile(key, cache=self)
        return sf
