"""Loss functions with analytic gradients w.r.t. predictions."""

import numpy as np

_EPS = 1e-12


class BinaryCrossEntropy:
    """BCE over sigmoid outputs in (0, 1)."""

    def value(self, pred, target):
        p = np.clip(pred, _EPS, 1.0 - _EPS)
        return float(-np.mean(target * np.log(p) + (1.0 - target) * np.log(1.0 - p)))

    def gradient(self, pred, target):
        p = np.clip(pred, _EPS, 1.0 - _EPS)
        return (p - target) / (p * (1.0 - p)) / pred.shape[0]


class MeanSquaredError:
    """Plain mean squared error."""

    def value(self, pred, target):
        return float(np.mean((pred - target) ** 2))

    def gradient(self, pred, target):
        return 2.0 * (pred - target) / pred.size


class CategoricalCrossEntropy:
    """Cross-entropy over softmax outputs and one-hot targets.

    Must be used with a ``softmax`` output layer: its ``gradient`` is the
    *joint* softmax+CE gradient (pred - target), which the softmax layer
    passes through unchanged.
    """

    def value(self, pred, target):
        p = np.clip(pred, _EPS, 1.0)
        return float(-np.mean(np.sum(target * np.log(p), axis=-1)))

    def gradient(self, pred, target):
        return (pred - target) / pred.shape[0]
