"""Binary-classification metrics: confusion counts, rates, ROC and AUC."""

import numpy as np


def confusion_counts(labels, preds):
    """Return (tp, fp, tn, fn) for 0/1 ``labels`` vs 0/1 ``preds``."""
    labels = np.asarray(labels).astype(bool)
    preds = np.asarray(preds).astype(bool)
    if labels.shape != preds.shape:
        raise ValueError("labels and preds must have the same shape")
    tp = int(np.sum(labels & preds))
    fp = int(np.sum(~labels & preds))
    tn = int(np.sum(~labels & ~preds))
    fn = int(np.sum(labels & ~preds))
    return tp, fp, tn, fn


def accuracy(labels, preds):
    """Fraction of predictions matching the labels."""
    tp, fp, tn, fn = confusion_counts(labels, preds)
    total = tp + fp + tn + fn
    return (tp + tn) / total if total else 0.0


def precision(labels, preds):
    """TP / (TP + FP); 0 when nothing was predicted positive."""
    tp, fp, _, _ = confusion_counts(labels, preds)
    return tp / (tp + fp) if tp + fp else 0.0


def recall(labels, preds):
    """TP / (TP + FN); 0 when there are no positives."""
    tp, _, _, fn = confusion_counts(labels, preds)
    return tp / (tp + fn) if tp + fn else 0.0


def true_positive_rate(labels, preds):
    """Alias of recall: TP / (TP + FN)."""
    return recall(labels, preds)


def false_positive_rate(labels, preds):
    """FP / (FP + TN); 0 when there are no negatives."""
    _, fp, tn, _ = confusion_counts(labels, preds)
    return fp / (fp + tn) if fp + tn else 0.0


def f1_score(labels, preds):
    """Harmonic mean of precision and recall."""
    p = precision(labels, preds)
    r = recall(labels, preds)
    return 2 * p * r / (p + r) if p + r else 0.0


def roc_curve(labels, scores):
    """ROC points swept over all score thresholds.

    Returns ``(fpr, tpr)`` arrays ordered by increasing FPR, always anchored
    at (0,0) and (1,1).
    """
    labels = np.asarray(labels).astype(bool)
    scores = np.asarray(scores, dtype=float)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same shape")
    order = np.argsort(-scores, kind="stable")
    labels = labels[order]
    scores = scores[order]
    n_pos = int(labels.sum())
    n_neg = labels.size - n_pos
    tps = np.cumsum(labels)
    fps = np.cumsum(~labels)
    # keep only the last point of each tied-score run
    distinct = np.r_[scores[1:] != scores[:-1], True]
    tps, fps = tps[distinct], fps[distinct]
    tpr = tps / n_pos if n_pos else np.zeros_like(tps, dtype=float)
    fpr = fps / n_neg if n_neg else np.zeros_like(fps, dtype=float)
    return np.r_[0.0, fpr], np.r_[0.0, tpr]


def auc(labels, scores):
    """Area under the ROC curve (trapezoidal)."""
    fpr, tpr = roc_curve(labels, scores)
    widths = fpr[1:] - fpr[:-1]
    heights = (tpr[1:] + tpr[:-1]) / 2.0
    return float(np.sum(widths * heights))
