"""Cross-validation splitters.

The paper's zero-day evaluation uses leave-one-attack-out folds: at each
fold all samples of one attack category are removed from the training set
and used only for testing (Section VII, "Cross Validation Setting").
"""

import numpy as np


def kfold_indices(n, k, seed=0):
    """Yield ``(train_idx, test_idx)`` pairs for k-fold CV over ``n`` items."""
    if not 2 <= k <= n:
        raise ValueError("need 2 <= k <= n")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    folds = np.array_split(perm, k)
    for i in range(k):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        yield train, test


def leave_one_group_out(groups):
    """Yield ``(held_out_group, train_idx, test_idx)`` per distinct group.

    ``groups`` is a sequence of hashable group labels, one per sample; the
    test fold is exactly the samples of the held-out group.
    """
    groups = np.asarray(groups)
    for g in sorted(set(groups.tolist()), key=str):
        test = np.flatnonzero(groups == g)
        train = np.flatnonzero(groups != g)
        yield g, train, test
