"""A multilayer perceptron built from :class:`repro.ml.layers.Dense`."""

import time

import numpy as np

from repro.ml.layers import Dense
from repro.ml.losses import BinaryCrossEntropy
from repro.ml.optim import Adam
from repro.obs import metrics

# cached instrument handles — train_batch runs in tight epoch loops, so
# the per-batch cost is two perf_counter reads and three attribute writes
_REG = metrics()
_OBS_BATCHES = _REG.counter("ml.train.batches")
_OBS_BATCH_SECONDS = _REG.timer("ml.train.batch.seconds")
_OBS_LOSS = _REG.gauge("ml.train.loss")


class MLP:
    """Sequential stack of dense layers.

    Parameters
    ----------
    layer_dims:
        List of widths, e.g. ``[145, 64, 1]``.
    activations:
        One activation name per layer (``len(layer_dims) - 1`` entries).
    seed:
        Seed for weight initialization.
    loss:
        Loss object with ``value``/``gradient``; defaults to BCE.
    optimizer:
        Optimizer with ``step(params, grads)``; defaults to Adam.
    """

    def __init__(self, layer_dims, activations, seed=0, loss=None, optimizer=None):
        if len(activations) != len(layer_dims) - 1:
            raise ValueError("need one activation per layer")
        rng = np.random.default_rng(seed)
        self.layers = [
            Dense(layer_dims[i], layer_dims[i + 1], activations[i], rng)
            for i in range(len(activations))
        ]
        self.loss = loss if loss is not None else BinaryCrossEntropy()
        self.optimizer = optimizer if optimizer is not None else Adam()

    def forward(self, x, train=False):
        """Run a batch through all layers; returns the network output."""
        out = np.asarray(x, dtype=float)
        if out.ndim == 1:
            out = out[None, :]
        for layer in self.layers:
            out = layer.forward(out, train=train)
        return out

    def backward(self, grad_out):
        """Backpropagate an output gradient; returns the input gradient."""
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def train_batch(self, x, target):
        """One optimizer step on a batch; returns the pre-step loss value."""
        start = time.perf_counter()
        target = np.asarray(target, dtype=float)
        if target.ndim == 1:
            target = target[:, None]
        pred = self.forward(x, train=True)
        loss_value = self.loss.value(pred, target)
        self.backward(self.loss.gradient(pred, target))
        self.optimizer.step(self.parameters, self.gradients)
        _OBS_BATCHES.inc()
        _OBS_LOSS.set(loss_value)
        _OBS_BATCH_SECONDS.observe(time.perf_counter() - start)
        return loss_value

    def train_batch_with_grad(self, x, grad_out):
        """One optimizer step driven by an externally supplied output
        gradient (used for the GAN generator, whose loss is evaluated
        through the discriminator).  Returns the input gradient."""
        start = time.perf_counter()
        self.forward(x, train=True)
        grad_in = self.backward(grad_out)
        self.optimizer.step(self.parameters, self.gradients)
        _OBS_BATCHES.inc()
        _OBS_BATCH_SECONDS.observe(time.perf_counter() - start)
        return grad_in

    def predict(self, x):
        """Forward pass without caching; returns the raw outputs."""
        return self.forward(x, train=False)

    def score_batch(self, x):
        """Batch-size-invariant inference over a ``(n, in_dim)`` matrix.

        Row *i* of the result is bit-identical whether ``x`` holds one
        window or thousands (see :meth:`Dense.infer`), so detector scores
        do not depend on how a stream was coalesced into batches.  This
        is the matrix-matrix serving path behind
        ``HardwareDetector.score_batch`` / ``repro serve``; training and
        evaluation keep the BLAS-backed :meth:`predict`.
        """
        out = np.asarray(x, dtype=float)
        if out.ndim == 1:
            out = out[None, :]
        for layer in self.layers:
            out = layer.infer(out)
        return out

    def predict_label(self, x, threshold=0.5):
        """Binary labels from the first output column."""
        return (self.predict(x)[:, 0] >= threshold).astype(int)

    @property
    def parameters(self):
        return [p for layer in self.layers for p in layer.parameters]

    @property
    def gradients(self):
        return [g for layer in self.layers for g in layer.gradients]

    @property
    def num_parameters(self):
        return sum(p.size for p in self.parameters)

    def clone_architecture(self, seed=0):
        """A freshly initialized network with the same shape."""
        dims = [self.layers[0].in_dim] + [l.out_dim for l in self.layers]
        acts = [l.activation for l in self.layers]
        return MLP(dims, acts, seed=seed, loss=type(self.loss)(), optimizer=type(self.optimizer)())
