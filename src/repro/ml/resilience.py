"""Training resilience: guarded optimization, state snapshots, and
durable training checkpoints.

PR 1 made *corpus collection* fault-tolerant; this module does the same
for the other half of the EVAX loop — AM-GAN vaccination training and
detector fitting.  Three pieces, documented in
``docs/training_resilience.md``:

* :class:`TrainingGuard` — watches every optimization step for
  non-finite parameters, gradient spikes and loss divergence (windowed
  EMA threshold), classifies each anomaly into a taxonomy mirroring the
  runtime failure kinds, and reacts per policy: sanitize in place
  (``clip``), rewind to the last in-memory snapshot with a reseeded
  retry (``rollback``), or fail fast (``raise``).  Bounded retries; a
  training run that cannot be stabilised raises the typed
  :class:`TrainingDivergedError` instead of silently producing a
  garbage detector.
* state capture/restore helpers — bit-exact serialization of MLP
  parameters, optimizer state (Adam moments / SGD velocity) and numpy
  Generator state, JSON-able for durable checkpoints.
* :class:`TrainingCheckpointer` — periodic atomic snapshots of every
  network + RNG in a training loop via
  :class:`repro.runtime.checkpoint.CheckpointStore`, so a killed
  ``repro train`` resumes bit-exact instead of restarting from scratch.
"""

import numpy as np

from repro.obs import metrics, obs_event

#: training-failure taxonomy (mirrors ``repro.runtime.errors``:
#: crash / timeout / divergent for tasks, these three for optimization)
NAN = "nan"                            # non-finite loss or parameters
GRAD_SPIKE = "grad_spike"              # gradient magnitude explosion
LOSS_DIVERGENCE = "loss_divergence"    # loss detached from its EMA

TRAINING_FAILURE_KINDS = (NAN, GRAD_SPIKE, LOSS_DIVERGENCE)

#: guard reaction policies
POLICY_ROLLBACK = "rollback"
POLICY_CLIP = "clip"
POLICY_RAISE = "raise"

POLICIES = (POLICY_ROLLBACK, POLICY_CLIP, POLICY_RAISE)


class TrainingDivergedError(RuntimeError):
    """Training could not be stabilised within the retry budget.

    Carries the failure ``kind`` (one of
    :data:`TRAINING_FAILURE_KINDS`), the ``step`` that tripped, and the
    ``stage`` name of the loop being guarded.
    """

    def __init__(self, message, kind=None, step=None, stage=None):
        super().__init__(message)
        self.kind = kind
        self.step = step
        self.stage = stage


# ---------------------------------------------------------------------------
# state capture / restore
# ---------------------------------------------------------------------------

def optimizer_state(optimizer):
    """JSON-able state of an :class:`~repro.ml.optim.Adam` or
    :class:`~repro.ml.optim.SGD` optimizer (exact float round-trip)."""
    name = type(optimizer).__name__.lower()
    if hasattr(optimizer, "_m"):
        return {
            "kind": name,
            "t": optimizer._t,
            "m": {str(i): v.tolist() for i, v in optimizer._m.items()},
            "v": {str(i): v.tolist() for i, v in optimizer._v.items()},
        }
    return {
        "kind": name,
        "velocity": {str(i): v.tolist()
                     for i, v in getattr(optimizer, "_velocity", {}).items()},
    }


def set_optimizer_state(optimizer, state):
    """Restore an optimizer from :func:`optimizer_state` output."""
    if "t" in state:
        optimizer._t = state["t"]
        optimizer._m = {int(i): np.array(v) for i, v in state["m"].items()}
        optimizer._v = {int(i): np.array(v) for i, v in state["v"].items()}
    else:
        optimizer._velocity = {int(i): np.array(v)
                               for i, v in state.get("velocity", {}).items()}


def mlp_state(mlp):
    """JSON-able snapshot of an :class:`~repro.ml.network.MLP`:
    layer weights/biases plus optimizer state.  ``tolist`` round-trips
    float64 exactly, so restore is bit-exact."""
    return {
        "layers": [{"weights": layer.weights.tolist(),
                    "bias": layer.bias.tolist()}
                   for layer in mlp.layers],
        "optimizer": optimizer_state(mlp.optimizer),
    }


def set_mlp_state(mlp, state):
    """Restore a network serialized by :func:`mlp_state` (shapes must
    match the live network)."""
    if len(state["layers"]) != len(mlp.layers):
        raise ValueError("layer count mismatch in training snapshot")
    for layer, saved in zip(mlp.layers, state["layers"]):
        weights = np.array(saved["weights"])
        bias = np.array(saved["bias"])
        if weights.shape != layer.weights.shape:
            raise ValueError("weight shape mismatch in training snapshot")
        layer.weights[:] = weights
        layer.bias[:] = bias
    set_optimizer_state(mlp.optimizer, state["optimizer"])


def rng_state(rng):
    """JSON-able state of a ``numpy.random.Generator``."""
    return rng.bit_generator.state


def set_rng_state(rng, state):
    """Restore a Generator from :func:`rng_state` output."""
    rng.bit_generator.state = state


def _clone_optimizer_state(optimizer):
    if hasattr(optimizer, "_m"):
        return ("adam", optimizer._t,
                {i: v.copy() for i, v in optimizer._m.items()},
                {i: v.copy() for i, v in optimizer._v.items()})
    return ("sgd", {i: v.copy()
                    for i, v in getattr(optimizer, "_velocity", {}).items()})


def _restore_optimizer_state(optimizer, clone):
    if clone[0] == "adam":
        _, optimizer._t, m, v = clone
        optimizer._m = {i: a.copy() for i, a in m.items()}
        optimizer._v = {i: a.copy() for i, a in v.items()}
    else:
        optimizer._velocity = {i: a.copy() for i, a in clone[1].items()}


# ---------------------------------------------------------------------------
# the guard
# ---------------------------------------------------------------------------

class TrainingGuard:
    """Divergence watchdog for an optimization loop.

    Usage (the shape :meth:`repro.core.amgan.AMGAN.train` follows)::

        guard.watch(stage="gan", generator=gan.generator, ...)
        guard.attach_rng(gan.rng)
        step = 0
        while step < n:
            guard.snapshot_if_due(step)
            ... one training step ...
            rewind = guard.inspect(step, loss=loss)
            if rewind is not None:
                step = rewind          # rolled back; retry from snapshot
                continue
            step += 1

    Parameters
    ----------
    policy:
        ``rollback`` (default) — restore the last in-memory snapshot
        (parameters, optimizer moments *and* RNG state), perturb the RNG
        by one draw so the retry takes a different path, and rewind the
        loop; after ``max_rollbacks`` consecutive failures raise
        :class:`TrainingDivergedError`.
        ``clip`` — sanitize parameters in place (non-finite -> 0,
        magnitude clipped) and keep going.
        ``raise`` — fail fast on the first anomaly.
    loss_window / loss_factor:
        A loss is divergent when it exceeds ``loss_factor`` times the
        exponential moving average over the last ``loss_window`` steps
        (and the EMA is established).
    grad_limit:
        Largest tolerated absolute gradient entry.
    param_limit:
        Largest tolerated absolute parameter entry — a runaway weight
        norm is divergence even while the loss still reads sane.
    snapshot_every:
        Steps between in-memory rollback snapshots.
    """

    def __init__(self, policy=POLICY_ROLLBACK, loss_window=32,
                 loss_factor=25.0, grad_limit=1e4, param_limit=1e6,
                 max_rollbacks=3, snapshot_every=25, clip_limit=1e3):
        if policy not in POLICIES:
            raise ValueError(f"unknown guard policy {policy!r}")
        self.policy = policy
        self.loss_window = loss_window
        self.loss_factor = loss_factor
        self.grad_limit = grad_limit
        self.param_limit = param_limit
        self.max_rollbacks = max_rollbacks
        self.snapshot_every = snapshot_every
        self.clip_limit = clip_limit
        self.stage = "train"
        self.trips = []                        # (step, kind, action)
        self._networks = {}
        self._rng = None
        self._snapshot = None
        self._snapshot_step = 0
        self._ema = None
        self._ema_steps = 0
        self._rollbacks_since_progress = 0

    # -- wiring ------------------------------------------------------------

    def watch(self, stage="train", **networks):
        """(Re)bind the guard to the networks of one training stage.
        Clears snapshots and loss history from any previous stage."""
        self.stage = stage
        self._networks = dict(networks)
        self._rng = None
        self._snapshot = None
        self._snapshot_step = 0
        self._ema = None
        self._ema_steps = 0
        self._rollbacks_since_progress = 0
        return self

    def attach_rng(self, rng):
        """Include a ``numpy.random.Generator`` in snapshots so a
        rollback rewinds the random sequence too."""
        self._rng = rng
        return self

    # -- snapshots ---------------------------------------------------------

    def snapshot_if_due(self, step):
        if self._snapshot is None or step - self._snapshot_step >= \
                self.snapshot_every:
            self.take_snapshot(step)

    def take_snapshot(self, step):
        """In-memory copy of every watched network + the RNG state."""
        self._snapshot = {
            name: ([p.copy() for p in net.parameters],
                   _clone_optimizer_state(net.optimizer))
            for name, net in self._networks.items()
        }
        if self._rng is not None:
            self._snapshot["__rng__"] = rng_state(self._rng)
        self._snapshot_step = step
        self._rollbacks_since_progress = 0

    def _restore_snapshot(self):
        for name, net in self._networks.items():
            params, opt_clone = self._snapshot[name]
            for live, saved in zip(net.parameters, params):
                live[:] = saved
            _restore_optimizer_state(net.optimizer, opt_clone)
        if self._rng is not None and "__rng__" in self._snapshot:
            set_rng_state(self._rng, self._snapshot["__rng__"])

    # -- detection ---------------------------------------------------------

    def _classify(self, loss):
        """The first anomaly found, or ``None``."""
        if loss is not None and not np.isfinite(loss):
            return NAN, f"non-finite loss {loss!r}"
        for name, net in self._networks.items():
            for p in net.parameters:
                if not np.isfinite(p).all():
                    return NAN, f"non-finite parameters in {name}"
                peak = np.abs(p).max() if p.size else 0.0
                if peak > self.param_limit:
                    return LOSS_DIVERGENCE, (
                        f"parameter magnitude {peak:.3g} in {name} "
                        f"(limit {self.param_limit:g})")
            for g in net.gradients:
                peak = np.abs(g).max() if g.size else 0.0
                if not np.isfinite(peak) or peak > self.grad_limit:
                    return GRAD_SPIKE, (f"gradient peak {peak:.3g} in "
                                        f"{name} (limit {self.grad_limit:g})")
        if loss is not None and self._ema is not None and \
                self._ema_steps >= self.loss_window and \
                loss > self.loss_factor * max(self._ema, 1e-12):
            return LOSS_DIVERGENCE, (f"loss {loss:.3g} vs EMA "
                                     f"{self._ema:.3g} "
                                     f"(factor {self.loss_factor:g})")
        return None, None

    def _update_ema(self, loss):
        if loss is None or not np.isfinite(loss):
            return
        alpha = 2.0 / (self.loss_window + 1.0)
        self._ema = loss if self._ema is None else \
            (1.0 - alpha) * self._ema + alpha * loss
        self._ema_steps += 1

    # -- reaction ----------------------------------------------------------

    def inspect(self, step, loss=None):
        """Check the just-completed step.  Returns ``None`` when healthy
        (or after an in-place ``clip`` repair), or the step to rewind to
        after a rollback.  Raises :class:`TrainingDivergedError` per
        policy / when the retry budget is exhausted."""
        kind, detail = self._classify(loss)
        if kind is None:
            self._update_ema(loss)
            return None
        return self._react(step, kind, detail)

    def _react(self, step, kind, detail):
        reg = metrics()
        reg.inc("guard.trips")
        reg.inc(f"guard.trips.{kind}")
        action = self.policy
        if action == POLICY_ROLLBACK and self._snapshot is None:
            action = POLICY_RAISE           # nothing to roll back to
        self.trips.append((step, kind, action))
        obs_event("guard.trip", level="warn", stage=self.stage, step=step,
                  kind=kind, action=action, detail=detail)
        if action == POLICY_RAISE:
            raise TrainingDivergedError(
                f"{self.stage} diverged at step {step}: {detail}",
                kind=kind, step=step, stage=self.stage)
        if action == POLICY_CLIP:
            self._sanitize()
            reg.inc("guard.clips")
            return None
        # rollback
        self._rollbacks_since_progress += 1
        if self._rollbacks_since_progress > self.max_rollbacks:
            raise TrainingDivergedError(
                f"{self.stage} diverged at step {step} and exhausted "
                f"{self.max_rollbacks} rollbacks: {detail}",
                kind=kind, step=step, stage=self.stage)
        self._restore_snapshot()
        if self._rng is not None:
            # the "reseeded step": nudge the random sequence so the
            # retry does not replay the exact trajectory that diverged
            self._rng.integers(0, 2 ** 31)
        reg.inc("guard.rollbacks")
        obs_event("guard.rollback", level="warn", stage=self.stage,
                  step=step, to_step=self._snapshot_step, kind=kind)
        return self._snapshot_step

    def _sanitize(self):
        for net in self._networks.values():
            for p in net.parameters:
                np.nan_to_num(p, copy=False, nan=0.0,
                              posinf=self.clip_limit,
                              neginf=-self.clip_limit)
                np.clip(p, -self.clip_limit, self.clip_limit, out=p)

    # -- accounting --------------------------------------------------------

    def failure_counts(self):
        """Trip counts by taxonomy kind (zero-filled)."""
        counts = {kind: 0 for kind in TRAINING_FAILURE_KINDS}
        for _, kind, _ in self.trips:
            counts[kind] += 1
        return counts


# ---------------------------------------------------------------------------
# durable checkpoints
# ---------------------------------------------------------------------------

class TrainingCheckpointer:
    """Periodic durable training snapshots over a
    :class:`~repro.runtime.checkpoint.CheckpointStore`.

    Each ``save`` persists, atomically, the full state needed for a
    bit-exact resume: every network's parameters + optimizer moments,
    every RNG's generator state, the iteration number, and free-form
    ``extra`` payload (style history, the writing run's id for lineage).
    ``resume=True`` validates the stored context against this build's
    (:class:`~repro.runtime.errors.CheckpointError` on mismatch — a
    checkpoint from a different configuration must not be resumed).
    """

    def __init__(self, directory, context, interval=100, resume=False):
        from repro.runtime.checkpoint import CheckpointStore
        self.interval = interval
        self.resume = resume
        self.store = CheckpointStore(directory)
        self.store.open(dict(context), resume=resume)

    def due(self, iteration):
        return self.interval > 0 and iteration > 0 and \
            iteration % self.interval == 0

    def save(self, stage, iteration, networks, rngs=None, extra=None):
        """Atomically persist one training snapshot under key ``stage``."""
        payload = {
            "iteration": int(iteration),
            "networks": {name: mlp_state(net)
                         for name, net in networks.items()},
            "rngs": {name: rng_state(rng)
                     for name, rng in (rngs or {}).items()},
            "extra": extra or {},
        }
        self.store.put(stage, payload)
        metrics().inc("guard.checkpoints.written")
        obs_event("guard.checkpoint", level="debug", stage=stage,
                  iteration=iteration)
        return payload

    def load(self, stage):
        """The stored snapshot for ``stage``, or ``None`` when absent or
        failing its checksum (only consulted on resume)."""
        if not self.resume or stage not in set(self.store.valid_keys()):
            return None
        return self.store.get(stage)

    def restore(self, stage, networks, rngs=None):
        """Restore live networks/RNGs from the stored ``stage`` snapshot;
        returns the payload (for ``iteration``/``extra``) or ``None``."""
        payload = self.load(stage)
        if payload is None:
            return None
        for name, net in networks.items():
            if name in payload["networks"]:
                set_mlp_state(net, payload["networks"][name])
        for name, rng in (rngs or {}).items():
            if name in payload["rngs"]:
                set_rng_state(rng, payload["rngs"][name])
        metrics().inc("guard.checkpoints.restored")
        obs_event("guard.restore", stage=stage,
                  iteration=payload["iteration"])
        return payload
