"""Gradient-descent optimizers operating on (parameter, gradient) pairs."""

import numpy as np


class SGD:
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, lr=0.01, momentum=0.0):
        self.lr = lr
        self.momentum = momentum
        self._velocity = {}

    def step(self, params, grads):
        for i, (p, g) in enumerate(zip(params, grads)):
            if self.momentum:
                v = self._velocity.get(i)
                if v is None:
                    v = np.zeros_like(p)
                v = self.momentum * v - self.lr * g
                self._velocity[i] = v
                p += v
            else:
                p -= self.lr * g


class Adam:
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(self, lr=0.001, beta1=0.9, beta2=0.999, eps=1e-8):
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = {}
        self._v = {}
        self._t = 0

    def step(self, params, grads):
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for i, (p, g) in enumerate(zip(params, grads)):
            m = self._m.get(i)
            if m is None:
                m = np.zeros_like(p)
                self._v[i] = np.zeros_like(p)
            v = self._v[i]
            m = b1 * m + (1.0 - b1) * g
            v = b2 * v + (1.0 - b2) * g * g
            self._m[i], self._v[i] = m, v
            m_hat = m / (1.0 - b1 ** self._t)
            v_hat = v / (1.0 - b2 ** self._t)
            p -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
