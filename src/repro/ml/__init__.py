"""From-scratch neural-network substrate used by the EVAX pipeline.

The paper implemented its models with Keras (AM-GAN) and the FANN C library
(final perceptron detector).  This package provides the equivalent machinery
in pure numpy: dense layers with backpropagation, SGD/Adam optimizers,
binary-cross-entropy and mean-squared-error losses, classification metrics
(ROC/AUC, confusion counts), and cross-validation splitters including the
leave-one-attack-out splitter the paper's zero-day evaluation uses.
"""

from repro.ml.initializers import he_init, xavier_init, zeros_init
from repro.ml.layers import Dense, ACTIVATIONS
from repro.ml.losses import (BinaryCrossEntropy, CategoricalCrossEntropy,
                             MeanSquaredError)
from repro.ml.network import MLP
from repro.ml.optim import SGD, Adam
from repro.ml.metrics import (
    accuracy,
    auc,
    confusion_counts,
    f1_score,
    precision,
    recall,
    roc_curve,
    true_positive_rate,
    false_positive_rate,
)
from repro.ml.crossval import kfold_indices, leave_one_group_out
from repro.ml.resilience import (
    GRAD_SPIKE, LOSS_DIVERGENCE, NAN, POLICIES, TRAINING_FAILURE_KINDS,
    TrainingCheckpointer, TrainingDivergedError, TrainingGuard,
    mlp_state, optimizer_state, rng_state, set_mlp_state,
    set_optimizer_state, set_rng_state,
)

__all__ = [
    "he_init",
    "xavier_init",
    "zeros_init",
    "Dense",
    "ACTIVATIONS",
    "BinaryCrossEntropy",
    "CategoricalCrossEntropy",
    "MeanSquaredError",
    "MLP",
    "SGD",
    "Adam",
    "accuracy",
    "auc",
    "confusion_counts",
    "f1_score",
    "precision",
    "recall",
    "roc_curve",
    "true_positive_rate",
    "false_positive_rate",
    "kfold_indices",
    "leave_one_group_out",
    "GRAD_SPIKE", "LOSS_DIVERGENCE", "NAN", "POLICIES",
    "TRAINING_FAILURE_KINDS", "TrainingCheckpointer",
    "TrainingDivergedError", "TrainingGuard",
    "mlp_state", "optimizer_state", "rng_state", "set_mlp_state",
    "set_optimizer_state", "set_rng_state",
]
