"""Weight initialization schemes for dense layers."""

import numpy as np


def xavier_init(rng, fan_in, fan_out):
    """Glorot/Xavier uniform initialization, suited to tanh/sigmoid layers."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_init(rng, fan_in, fan_out):
    """He normal initialization, suited to ReLU-family layers."""
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def zeros_init(rng, fan_in, fan_out):
    """All-zero initialization (used for bias vectors and perceptrons)."""
    del rng
    return np.zeros((fan_in, fan_out))
