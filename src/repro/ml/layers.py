"""Dense layers and activation functions with analytic gradients."""

import numpy as np

from repro.ml.initializers import he_init, xavier_init


def _relu(x):
    return np.maximum(x, 0.0)


def _relu_grad(x, y):
    del y
    return (x > 0.0).astype(x.dtype)


def _leaky_relu(x):
    return np.where(x > 0.0, x, 0.01 * x)


def _leaky_relu_grad(x, y):
    del y
    return np.where(x > 0.0, 1.0, 0.01)


def _sigmoid(x):
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def _sigmoid_grad(x, y):
    del x
    return y * (1.0 - y)


def _tanh(x):
    return np.tanh(x)


def _tanh_grad(x, y):
    del x
    return 1.0 - y * y


def _linear(x):
    return x


def _linear_grad(x, y):
    del y
    return np.ones_like(x)


def _softmax(x):
    shifted = x - x.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=-1, keepdims=True)


def _softmax_grad(x, y):
    # Placeholder: softmax must be paired with CategoricalCrossEntropy,
    # whose gradient is computed jointly (pred - target); the layer then
    # passes it through unchanged.
    del x
    return np.ones_like(y)


#: name -> (forward, gradient) pairs.  Gradients receive both the
#: pre-activation ``x`` and the activation output ``y`` so that each can use
#: whichever is cheaper.
ACTIVATIONS = {
    "relu": (_relu, _relu_grad),
    "leaky_relu": (_leaky_relu, _leaky_relu_grad),
    "sigmoid": (_sigmoid, _sigmoid_grad),
    "tanh": (_tanh, _tanh_grad),
    "linear": (_linear, _linear_grad),
    # softmax is only valid as the output layer under
    # CategoricalCrossEntropy (joint gradient)
    "softmax": (_softmax, _softmax_grad),
}


class Dense:
    """A fully-connected layer ``y = act(x @ W + b)``.

    Parameters
    ----------
    in_dim, out_dim:
        Input and output widths.
    activation:
        A key of :data:`ACTIVATIONS`.
    rng:
        ``numpy.random.Generator`` used for weight initialization.
    """

    def __init__(self, in_dim, out_dim, activation, rng):
        if activation not in ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        init = he_init if activation in ("relu", "leaky_relu") else xavier_init
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        self.weights = init(rng, in_dim, out_dim)
        self.bias = np.zeros(out_dim)
        self._act, self._act_grad = ACTIVATIONS[activation]
        # caches populated by forward() and consumed by backward()
        self._x = None
        self._z = None
        self._y = None
        # gradients populated by backward()
        self.grad_weights = np.zeros_like(self.weights)
        self.grad_bias = np.zeros_like(self.bias)

    def forward(self, x, train=True):
        """Compute the layer output for a batch ``x`` of shape (n, in_dim)."""
        z = x @ self.weights + self.bias
        y = self._act(z)
        if train:
            self._x, self._z, self._y = x, z, y
        return y

    def infer(self, x):
        """Inference-only forward pass with **batch-size-invariant** rows.

        ``x @ W`` dispatches to BLAS gemm, whose blocking (and therefore
        accumulation order, and therefore last-ulp rounding) depends on
        the batch shape: row *i* of a 4096-row product is NOT guaranteed
        bit-identical to the same row pushed through alone.  The serving
        layer's contract — ``score_batch`` bit-identical to the
        per-window path, however the stream gets chopped into batches —
        needs each output row to be a pure function of that row alone,
        so this path uses ``np.einsum`` (fixed-order accumulation over
        the contraction axis, no batch-shape-dependent blocking).
        Caches nothing; never use for training.
        """
        z = np.einsum("nk,km->nm", x, self.weights)
        z += self.bias
        return self._act(z)

    def backward(self, grad_out):
        """Backpropagate ``dL/dy``; stores dL/dW, dL/db, returns dL/dx."""
        if self._x is None:
            raise RuntimeError("backward() called before forward(train=True)")
        dz = grad_out * self._act_grad(self._z, self._y)
        self.grad_weights = self._x.T @ dz
        self.grad_bias = dz.sum(axis=0)
        return dz @ self.weights.T

    @property
    def parameters(self):
        return [self.weights, self.bias]

    @property
    def gradients(self):
        return [self.grad_weights, self.grad_bias]
