"""EVAX reproduction: a pro-active, adaptive architecture for high
performance and security (MICRO 2022), rebuilt in pure Python.

Layers (bottom-up):

* :mod:`repro.ml` -- from-scratch neural-network substrate (numpy)
* :mod:`repro.sim` -- cycle-level out-of-order CPU simulator with HPCs
* :mod:`repro.workloads` -- benign SPEC-like kernels
* :mod:`repro.attacks` -- 19 attack categories + evasion + fuzzing tools
* :mod:`repro.defenses` -- fencing / InvisiSpec policies + secure-mode gating
* :mod:`repro.data` -- the 145-feature schema and labelled window datasets
* :mod:`repro.core` -- EVAX itself: AM-GAN vaccination, security-HPC
  engineering, hardware detectors, adaptive architecture
"""

__version__ = "1.0.0"

from repro.sim import Machine, ProgramBuilder, SimConfig
from repro.sim.config import DefenseMode


def quick_pipeline(attack_seeds=(1, 2), workload_scale=3, sample_period=250,
                   gan_iterations=1200, seed=0):
    """Build a small dataset and run the full EVAX pipeline -- the one-call
    end-to-end demo (minutes, not hours)."""
    from repro.attacks import ALL_ATTACKS
    from repro.workloads import all_workloads
    from repro.data import build_dataset
    from repro.core import vaccinate

    attacks = [cls(seed=s) for cls in ALL_ATTACKS for s in attack_seeds]
    workloads = all_workloads(scale=workload_scale, seeds=(0, 1))
    dataset = build_dataset(attacks, workloads, sample_period=sample_period)
    return vaccinate(dataset, gan_iterations=gan_iterations, seed=seed)


__all__ = [
    "Machine", "ProgramBuilder", "SimConfig", "DefenseMode",
    "quick_pipeline", "__version__",
]
