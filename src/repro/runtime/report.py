"""Corpus build health: graceful degradation made explicit.

A resilient build never silently drops sources — every quarantined
source is recorded in the :class:`FailureReport` with its failure kind
(crash / timeout / divergent), and the report renders a health summary
suitable for the CLI.  ``require_coverage`` turns excessive loss into a
hard :class:`~repro.runtime.errors.CoverageError`, because a detector
trained on a quietly skewed corpus is worse than no detector at all.
"""

from dataclasses import dataclass, field
from typing import List

from repro.runtime.errors import FAILURE_KINDS, CoverageError
from repro.runtime.runner import TaskFailure


@dataclass
class FailureReport:
    """Outcome accounting for one corpus build."""

    total: int = 0              # sources requested
    completed: int = 0          # simulated successfully this run
    skipped: int = 0            # restored from checkpoint shards
    failures: List[TaskFailure] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def coverage(self):
        """Fraction of requested sources present in the corpus."""
        if self.total <= 0:
            return 1.0
        return (self.completed + self.skipped) / self.total

    def counts_by_kind(self):
        counts = {kind: 0 for kind in FAILURE_KINDS}
        for failure in self.failures:
            counts[failure.kind] = counts.get(failure.kind, 0) + 1
        return counts

    def quarantined_keys(self):
        return [f.key for f in self.failures]

    def summary(self):
        """Multi-line human-readable health summary."""
        counts = self.counts_by_kind()
        lines = [
            f"corpus health: {self.completed + self.skipped}/{self.total} "
            f"sources ({self.coverage:.0%} coverage, "
            f"{self.skipped} from checkpoint, {self.elapsed:.1f}s)",
        ]
        if self.failures:
            kinds = ", ".join(f"{k}={v}" for k, v in counts.items() if v)
            lines.append(f"quarantined {len(self.failures)} sources "
                         f"({kinds}):")
            for failure in self.failures:
                lines.append(f"  [{failure.kind:9s}] {failure.key} "
                             f"after {failure.attempts} attempt(s): "
                             f"{failure.message}")
        return "\n".join(lines)

    def require_coverage(self, min_coverage, partial=None):
        """Raise :class:`CoverageError` when coverage is below the gate."""
        if self.coverage < min_coverage:
            raise CoverageError(
                f"corpus coverage {self.coverage:.0%} below required "
                f"{min_coverage:.0%} "
                f"({len(self.failures)} of {self.total} sources lost)",
                report=self, partial=partial)
        return self
