"""Checkpoint/resume for long corpus builds.

Completed sources are flushed to one JSON shard per source plus a
``manifest.json`` that records, per shard, the file name, SHA-256
digest and record count, alongside a *context* fingerprint of the build
(sample period, task keys...).  Everything is written atomically
(temp + ``os.replace``), so a kill at any instant leaves either the old
or the new state — never a torn one — and a resumed run can trust the
manifest: it re-simulates only sources whose shard is missing or fails
its checksum.

The store is payload-agnostic (it persists JSON documents keyed by task
key); the data layer owns the record <-> JSON mapping.
"""

import json
import os
import re

from repro.runtime.atomic import atomic_write_bytes, sha256_file
from repro.runtime.errors import CheckpointError

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1


def _slug(key):
    return re.sub(r"[^A-Za-z0-9._-]+", "_", key)


class CheckpointStore:
    """A directory of per-source shards plus an atomic manifest."""

    def __init__(self, directory):
        self.directory = directory
        self._manifest = {"version": MANIFEST_VERSION,
                          "context": {}, "shards": {}}

    # -- lifecycle ------------------------------------------------------------

    def open(self, context, resume=False):
        """Initialise the store for a build with the given context.

        ``resume=True`` loads an existing manifest (and insists its
        context matches, else :class:`CheckpointError` — resuming a
        *different* build into these shards would corrupt the corpus).
        Otherwise any previous state is cleared.
        """
        os.makedirs(self.directory, exist_ok=True)
        if resume and os.path.exists(self._manifest_path()):
            self._manifest = self._read_manifest()
            if self._manifest.get("context") != context:
                raise CheckpointError(
                    f"checkpoint at {self.directory} was built with "
                    f"different settings; re-run without --resume to "
                    f"rebuild it")
        else:
            self.reset()
            self._manifest["context"] = dict(context)
            self._write_manifest()
        return self

    def reset(self):
        """Delete all shards and the manifest."""
        if os.path.isdir(self.directory):
            for name in os.listdir(self.directory):
                if name == MANIFEST_NAME or name.endswith(".shard.json"):
                    try:
                        os.unlink(os.path.join(self.directory, name))
                    except OSError:
                        pass
        self._manifest = {"version": MANIFEST_VERSION,
                          "context": {}, "shards": {}}

    # -- shard access ---------------------------------------------------------

    def put(self, key, payload):
        """Persist one completed source atomically and register it."""
        name = _slug(key) + ".shard.json"
        path = os.path.join(self.directory, name)
        data = json.dumps(payload, separators=(",", ":")).encode()
        digest = atomic_write_bytes(path, data)
        self._manifest["shards"][key] = {
            "file": name,
            "sha256": digest,
            "bytes": len(data),
        }
        self._write_manifest()

    def get(self, key):
        """Load and verify one shard; raises :class:`CheckpointError`
        when the shard is missing or its checksum does not match."""
        entry = self._manifest["shards"].get(key)
        if entry is None:
            raise CheckpointError(f"no checkpoint shard for {key!r}")
        path = os.path.join(self.directory, entry["file"])
        if not os.path.exists(path):
            raise CheckpointError(f"checkpoint shard missing: {path}")
        if sha256_file(path) != entry["sha256"]:
            raise CheckpointError(f"checkpoint shard corrupt "
                                  f"(checksum mismatch): {path}")
        with open(path, "rb") as f:
            return json.loads(f.read().decode())

    def valid_keys(self):
        """Keys whose shard exists on disk and passes its checksum.

        Invalid entries are dropped from the in-memory manifest so the
        build re-simulates them (graceful self-healing on resume).
        """
        good = []
        for key in list(self._manifest["shards"]):
            entry = self._manifest["shards"][key]
            path = os.path.join(self.directory, entry["file"])
            if os.path.exists(path) and sha256_file(path) == entry["sha256"]:
                good.append(key)
            else:
                del self._manifest["shards"][key]
        return good

    def has(self, key):
        return key in self._manifest["shards"]

    # -- manifest -------------------------------------------------------------

    def _manifest_path(self):
        return os.path.join(self.directory, MANIFEST_NAME)

    def _read_manifest(self):
        try:
            with open(self._manifest_path(), "rb") as f:
                manifest = json.loads(f.read().decode())
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint manifest at "
                f"{self._manifest_path()}: {exc}") from exc
        if manifest.get("version") != MANIFEST_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint manifest version "
                f"{manifest.get('version')!r}")
        manifest.setdefault("shards", {})
        manifest.setdefault("context", {})
        return manifest

    def _write_manifest(self):
        data = json.dumps(self._manifest, indent=1).encode()
        atomic_write_bytes(self._manifest_path(), data)
