"""Atomic, checksummed file IO primitives.

All durable artifacts of the corpus pipeline (dataset ``.npz`` bundles,
metadata sidecars, checkpoint shards, manifests, campaign cache cells)
are written with write-to-temp + ``os.replace`` so a crash or kill
mid-write can never leave a half-written file under the final name,
plus SHA-256 digests so a stale or tampered file is detected at load
time.

Renames alone only order *metadata* within the page cache: after a
power-loss-style kill the directory entry may point at the new file
while neither the data nor the rename has reached the disk.  So the
write protocol also fsyncs the temp file *and* the parent directory on
both sides of the rename — data first, then the directory entry that
names it — which is the full crash-consistency recipe checkpoints and
campaign caches rely on (exercised by ``tests/test_crash_consistency``).
"""

import hashlib
import os
import tempfile


def sha256_bytes(data):
    """Hex SHA-256 digest of a bytes payload."""
    return hashlib.sha256(data).hexdigest()


def sha256_file(path, chunk=1 << 20):
    """Hex SHA-256 digest of a file's contents (streamed)."""
    h = hashlib.sha256()
    with open(path, "rb") as f:
        while True:
            block = f.read(chunk)
            if not block:
                break
            h.update(block)
    return h.hexdigest()


def fsync_directory(directory):
    """Flush a directory's entry table to stable storage.

    A no-op on platforms (or filesystems) where directories cannot be
    opened or fsynced — durability degrades to plain rename atomicity
    there, which is still crash-safe within a running kernel.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path, data, fsync=True):
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file lives in the same directory as the target so the
    replace is a same-filesystem rename.  With ``fsync`` (the default)
    the temp file's data and the parent directory are flushed before
    *and* after the rename, so the artifact survives power-loss-style
    kills, not just process death.  Returns the SHA-256 digest of the
    written payload.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory,
                                    prefix=os.path.basename(path) + ".tmp.")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(data)
            f.flush()
            if fsync:
                os.fsync(f.fileno())
        if fsync:
            fsync_directory(directory)
        os.replace(tmp_path, path)
        if fsync:
            fsync_directory(directory)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return sha256_bytes(data)
