"""Atomic, checksummed file IO primitives.

All durable artifacts of the corpus pipeline (dataset ``.npz`` bundles,
metadata sidecars, checkpoint shards, manifests) are written with
write-to-temp + ``os.replace`` so a crash or kill mid-write can never
leave a half-written file under the final name, plus SHA-256 digests so
a stale or tampered file is detected at load time.
"""

import hashlib
import os
import tempfile


def sha256_bytes(data):
    """Hex SHA-256 digest of a bytes payload."""
    return hashlib.sha256(data).hexdigest()


def sha256_file(path, chunk=1 << 20):
    """Hex SHA-256 digest of a file's contents (streamed)."""
    h = hashlib.sha256()
    with open(path, "rb") as f:
        while True:
            block = f.read(chunk)
            if not block:
                break
            h.update(block)
    return h.hexdigest()


def atomic_write_bytes(path, data, fsync=True):
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file lives in the same directory as the target so the
    replace is a same-filesystem rename.  Returns the SHA-256 digest of
    the written payload.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory,
                                    prefix=os.path.basename(path) + ".tmp.")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(data)
            f.flush()
            if fsync:
                os.fsync(f.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return sha256_bytes(data)
