"""Resilient task execution for corpus construction.

Each task runs in its *own* worker process, so any single simulation can
crash (exception, segfault, ``os._exit``) or wedge (infinite loop,
sleep) without taking the rest of the corpus build with it — unlike a
bare ``multiprocessing.Pool.map``, where one bad worker poisons the
whole map call.  The runner provides:

* **bounded concurrency** — at most ``processes`` workers live at once;
* **per-task timeout** — a wedged worker is terminated at its deadline
  and the task classified ``timeout``;
* **bounded retries** — failed tasks are re-queued with exponential
  backoff plus *deterministic* jitter (hashed from the task key and
  attempt number, so runs are reproducible);
* **validation** — a caller-supplied validator runs on every completed
  value; a rejection classifies the task ``divergent``;
* **ordered streaming** — results are yielded in submission order as
  soon as they are available, so the consumer can flush incrementally
  with bounded buffering instead of holding the whole corpus.

The yielded items are :class:`TaskResult` (success) or
:class:`TaskFailure` (quarantined after exhausting retries); the
consumer decides what graceful degradation means.
"""

import hashlib
import heapq
import multiprocessing
import multiprocessing.connection
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Optional

from repro.obs import metrics, obs_event
from repro.runtime.errors import CRASH, DIVERGENT, TIMEOUT


@dataclass
class Task:
    """One unit of work: a stable key plus an opaque payload handed to
    the runner's task function."""

    key: str
    payload: object


@dataclass
class TaskResult:
    """A task that completed and validated."""

    key: str
    index: int
    value: object
    attempts: int
    elapsed: float

    ok = True


@dataclass
class TaskFailure:
    """A task quarantined after exhausting its retries."""

    key: str
    index: int
    kind: str                # CRASH | TIMEOUT | DIVERGENT
    message: str
    attempts: int
    elapsed: float

    ok = False


def backoff_delay(key, attempt, base=0.05, maximum=2.0):
    """Exponential backoff with deterministic jitter.

    ``base * 2**(attempt-1)`` capped at ``maximum``, scaled by a jitter
    factor in ``[1, 2)`` derived from SHA-256 of ``key:attempt`` — so
    two retrying tasks never thunder in lockstep, yet every run of the
    same corpus build waits the exact same amounts.
    """
    if base <= 0:
        return 0.0
    raw = min(maximum, base * (2.0 ** (attempt - 1)))
    digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
    jitter = 1.0 + int.from_bytes(digest[:4], "big") / 0xFFFFFFFF
    return min(maximum, raw * jitter)


def _child_entry(conn, fn, payload, attempt):
    """Worker-process entry: run the task and ship the outcome back."""
    try:
        value = fn(payload, attempt)
    # the isolation boundary: ANY task failure (incl. SystemExit /
    # KeyboardInterrupt raised inside the task) must become a reported
    # crash, never an unexplained silent child death
    except BaseException as exc:  # repro-lint: disable=broad-except
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}",
                       traceback.format_exc(limit=8)))
        except OSError:
            pass                 # pipe already gone; parent sees a crash
        finally:
            conn.close()
        return
    try:
        conn.send(("ok", value))
    # pickling an arbitrary task result can raise anything a custom
    # __reduce__/__getstate__ chooses to; whatever it was, the outcome
    # is the same: report "result not transferable" over the pipe
    except Exception as exc:  # repro-lint: disable=broad-except
        try:
            conn.send(("error", f"result not transferable: {exc}", ""))
        except OSError:
            pass                 # pipe already gone; parent sees a crash
    conn.close()


@dataclass
class _Active:
    """Book-keeping for one live worker process."""

    task: Task
    index: int
    attempt: int
    proc: object
    conn: object
    started: float
    deadline: float


class TaskRunner:
    """Execute tasks in isolated worker processes with retries,
    timeouts and ordered streaming of results.

    Parameters
    ----------
    fn:
        ``fn(payload, attempt)`` — the task function, executed in a
        worker process.  ``attempt`` starts at 1.
    processes:
        max concurrent workers (default: CPU count).
    retries:
        how many times a failed task is re-attempted (total attempts =
        ``retries + 1``).
    timeout:
        per-attempt wall-clock deadline in seconds (``None`` = none).
    validator:
        optional ``validator(value)`` run in the parent on completed
        values; any exception classifies the attempt ``divergent``.
    """

    def __init__(self, fn, processes=None, retries=2, timeout=None,
                 backoff_base=0.05, backoff_max=2.0, validator=None,
                 mp_context=None):
        self.fn = fn
        self.processes = max(1, processes if processes is not None
                             else (os.cpu_count() or 2))
        self.retries = max(0, retries)
        self.timeout = timeout
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.validator = validator
        if mp_context is None:
            try:
                mp_context = multiprocessing.get_context("fork")
            except ValueError:          # platform without fork
                mp_context = multiprocessing.get_context()
        self.ctx = mp_context

    # -- scheduling -----------------------------------------------------------

    def run(self, tasks):
        """Yield a ``TaskResult``/``TaskFailure`` per task, in submission
        order, as soon as each is resolved."""
        tasks = list(tasks)
        if not tasks:
            return
        metrics().inc("runner.tasks.queued", len(tasks))
        # (ready_time, index, attempt, first_started or None)
        pending = [(0.0, i, 1, None) for i in range(len(tasks))]
        heapq.heapify(pending)
        active = {}                     # conn -> _Active
        resolved = {}                   # index -> TaskResult | TaskFailure
        next_emit = 0
        try:
            while pending or active or next_emit < len(tasks):
                while next_emit in resolved:
                    yield resolved.pop(next_emit)
                    next_emit += 1
                if not pending and not active:
                    if next_emit < len(tasks):      # pragma: no cover
                        raise RuntimeError("task runner lost results")
                    break
                now = time.monotonic()
                self._launch_ready(tasks, pending, active, now)
                wait = self._wait_budget(pending, active, now)
                ready = multiprocessing.connection.wait(
                    list(active), timeout=wait) if active else []
                if not active and wait:
                    time.sleep(wait)
                now = time.monotonic()
                for conn in ready:
                    self._finish(active.pop(conn), pending, resolved, now)
                for conn, slot in list(active.items()):
                    if now >= slot.deadline:
                        self._kill(slot)
                        del active[conn]
                        self._resolve_failure(
                            slot, TIMEOUT,
                            f"exceeded {self.timeout:.1f}s task timeout",
                            pending, resolved, now)
        finally:
            for slot in active.values():
                self._kill(slot)

    def _launch_ready(self, tasks, pending, active, now):
        while pending and len(active) < self.processes \
                and pending[0][0] <= now:
            _, index, attempt, started = heapq.heappop(pending)
            task = tasks[index]
            parent_conn, child_conn = self.ctx.Pipe(duplex=False)
            proc = self.ctx.Process(
                target=_child_entry,
                args=(child_conn, self.fn, task.payload, attempt),
                daemon=True, name=f"repro-task-{task.key}-a{attempt}")
            proc.start()
            child_conn.close()
            metrics().inc("runner.tasks.started")
            obs_event("task.started", level="debug",
                      key=task.key, attempt=attempt)
            deadline = now + self.timeout if self.timeout else float("inf")
            active[parent_conn] = _Active(
                task=task, index=index, attempt=attempt, proc=proc,
                conn=parent_conn, started=started or now, deadline=deadline)

    def _wait_budget(self, pending, active, now):
        """How long the scheduler may block before something needs it."""
        horizon = []
        if active:
            horizon.append(min(s.deadline for s in active.values()))
        if pending and len(active) < self.processes:
            horizon.append(pending[0][0])
        if not horizon:
            return None
        return max(0.0, min(min(horizon) - now, 1.0))

    def _finish(self, slot, pending, resolved, now):
        """A worker's pipe became readable: collect and classify."""
        try:
            message = slot.conn.recv()
        except (EOFError, OSError):
            message = None
        slot.conn.close()
        slot.proc.join(timeout=5.0)
        if message is None:             # died without reporting
            code = slot.proc.exitcode
            self._resolve_failure(
                slot, CRASH, f"worker died without result (exit {code})",
                pending, resolved, now)
            return
        if message[0] == "error":
            self._resolve_failure(slot, CRASH, message[1],
                                  pending, resolved, now)
            return
        value = message[1]
        if self.validator is not None:
            try:
                self.validator(value)
            # a user-supplied validator may raise anything; every
            # failure means the same thing — the result is DIVERGENT —
            # and is recorded with its type in the failure taxonomy
            except Exception as exc:  # repro-lint: disable=broad-except
                self._resolve_failure(
                    slot, DIVERGENT, f"{type(exc).__name__}: {exc}",
                    pending, resolved, now)
                return
        elapsed = now - slot.started
        reg = metrics()
        reg.inc("runner.tasks.finished")
        reg.observe("runner.task.seconds", elapsed)
        obs_event("task.finished", key=slot.task.key,
                  attempts=slot.attempt, elapsed_s=round(elapsed, 6))
        resolved[slot.index] = TaskResult(
            key=slot.task.key, index=slot.index, value=value,
            attempts=slot.attempt, elapsed=elapsed)

    def _resolve_failure(self, slot, kind, message, pending, resolved, now):
        """Retry with backoff, or quarantine once retries are spent."""
        reg = metrics()
        if slot.attempt <= self.retries:
            delay = backoff_delay(slot.task.key, slot.attempt,
                                  self.backoff_base, self.backoff_max)
            reg.inc("runner.tasks.retried")
            reg.inc(f"runner.failures.{kind}")
            obs_event("task.retry", level="warn", key=slot.task.key,
                      kind=kind, attempt=slot.attempt,
                      delay_s=round(delay, 6))
            heapq.heappush(pending, (now + delay, slot.index,
                                     slot.attempt + 1, slot.started))
            return
        elapsed = now - slot.started
        reg.inc("runner.tasks.quarantined")
        reg.inc(f"runner.failures.{kind}")
        reg.observe("runner.task.seconds", elapsed)
        obs_event("task.quarantined", level="error", key=slot.task.key,
                  kind=kind, attempts=slot.attempt, message=message,
                  elapsed_s=round(elapsed, 6))
        resolved[slot.index] = TaskFailure(
            key=slot.task.key, index=slot.index, kind=kind,
            message=message, attempts=slot.attempt,
            elapsed=elapsed)

    @staticmethod
    def _kill(slot):
        proc = slot.proc
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=2.0)
            if proc.is_alive():         # pragma: no cover
                proc.kill()
                proc.join(timeout=2.0)
        try:
            slot.conn.close()
        except OSError:                 # pragma: no cover
            pass
