"""Deterministic fault injection for the corpus pipeline.

Wrapping any attack/workload source in a :class:`ChaosSource` lets the
test suite (and operators rehearsing failure drills) inject the three
failure kinds the runner quarantines — worker crashes, hangs, and
divergent (garbage) traces — at exact, seeded points, so every
fault-tolerance behavior is exercised in CI rather than discovered in a
week-long corpus build.

Fault activation is keyed off the *attempt number* the runner passes
into the task function, so "fail twice then succeed" scenarios are
fully deterministic with no shared state between worker processes.
"""

import random
import time

from repro.runtime.errors import RuntimeTaskError

#: injectable fault kinds
CRASH_FAULT = "crash"
HANG_FAULT = "hang"
GARBAGE_FAULT = "garbage"


class ChaosCrash(RuntimeTaskError):
    """The exception a crash-fault raises inside the worker."""


class FaultSpec:
    """What to inject and for how long.

    ``fail_attempts`` is the number of leading attempts that fault; an
    attempt beyond it runs clean.  The default (a huge number) makes the
    fault persistent, which is how quarantine paths are exercised.
    """

    def __init__(self, kind, fail_attempts=10 ** 9, hang_seconds=3600.0):
        if kind not in (CRASH_FAULT, HANG_FAULT, GARBAGE_FAULT):
            raise ValueError(f"unknown fault kind {kind!r}")
        self.kind = kind
        self.fail_attempts = fail_attempts
        self.hang_seconds = hang_seconds

    def active(self, attempt):
        return attempt <= self.fail_attempts


class ChaosSource:
    """A source wrapper that misbehaves on demand.

    Proxies the source interface (``build``, ``max_cycles``, ``name``,
    ``category``, ``seed``) so it is a drop-in replacement anywhere a
    real attack or workload is accepted, and exposes the two hooks the
    parallel collector honours:

    * ``chaos_inject(attempt)`` — runs *before* the simulation; raises
      (crash) or sleeps past any sane deadline (hang);
    * ``chaos_mutate(records, attempt)`` — runs *after* the simulation;
      corrupts the collected records (garbage / divergent trace).
    """

    def __init__(self, inner, fault, seed=0):
        self.inner = inner
        self.fault = fault
        self.chaos_seed = seed
        self.name = getattr(inner, "name", type(inner).__name__)
        self.category = getattr(inner, "category", "benign")
        self.seed = getattr(inner, "seed", 0)

    def build(self):
        return self.inner.build()

    def max_cycles(self):
        if hasattr(self.inner, "max_cycles"):
            return self.inner.max_cycles()
        return 400_000

    # -- hooks invoked by the collection worker -------------------------------

    def chaos_inject(self, attempt):
        if not self.fault.active(attempt):
            return
        if self.fault.kind == CRASH_FAULT:
            raise ChaosCrash(
                f"injected crash in {self.name} (attempt {attempt})")
        if self.fault.kind == HANG_FAULT:
            time.sleep(self.fault.hang_seconds)

    def chaos_mutate(self, records, attempt):
        if self.fault.kind != GARBAGE_FAULT or not self.fault.active(attempt):
            return records
        rng = random.Random((self.chaos_seed << 16) ^ attempt)
        corrupted = []
        for record in records:
            deltas = list(record.deltas)
            if deltas and rng.random() < 0.5:
                deltas = deltas[: max(1, len(deltas) // 2)]   # wrong width
            if deltas:
                deltas[rng.randrange(len(deltas))] = -rng.randrange(1, 99)
            record.deltas = deltas
            corrupted.append(record)
        return corrupted


def inject_faults(sources, plan, seed=0):
    """Wrap ``sources`` (a list) per ``plan``: a mapping of list index ->
    :class:`FaultSpec`.  Unlisted sources pass through untouched."""
    wrapped = []
    for i, source in enumerate(sources):
        if i in plan:
            wrapped.append(ChaosSource(source, plan[i], seed=seed + i))
        else:
            wrapped.append(source)
    return wrapped
