"""Deterministic fault injection for the corpus pipeline *and* the
training loop.

Wrapping any attack/workload source in a :class:`ChaosSource` lets the
test suite (and operators rehearsing failure drills) inject the three
failure kinds the runner quarantines — worker crashes, hangs, and
divergent (garbage) traces — at exact, seeded points, so every
fault-tolerance behavior is exercised in CI rather than discovered in a
week-long corpus build.

Fault activation is keyed off the *attempt number* the runner passes
into the task function, so "fail twice then succeed" scenarios are
fully deterministic with no shared state between worker processes.

:class:`TrainingChaos` is the training-stage counterpart: passed into
``AMGAN.train``/``vaccinate`` it poisons gradients with NaN, scales
parameters to provoke a loss spike, or kills the process between
checkpoints (:class:`ChaosKill`), at exact iteration numbers.  Each
fault fires **once** — after the guard rolls back and replays the
iteration, the retry runs clean, exactly like a transient hardware or
numeric glitch.

:class:`CampaignChaos` is the campaign-stage fault set: it SIGKILLs a
worker mid-cell (the parent sees a silent child death and classifies
``crash``), corrupts a just-written cache entry in place, or truncates
it — exactly the disk/process failures a week-long evaluation matrix
meets in practice.  Cache faults fire once per cell, so a ``--resume``
run replays the campaign clean and the degradation contract
(quarantined holes, exit 1, bit-identical resumed aggregate) is
provable in CI.
"""

import os
import random
import time

import numpy as np

from repro.runtime.errors import RuntimeTaskError

#: injectable fault kinds
CRASH_FAULT = "crash"
HANG_FAULT = "hang"
GARBAGE_FAULT = "garbage"

#: injectable training-stage fault kinds
NAN_GRAD_FAULT = "nan_grad"
LOSS_SPIKE_FAULT = "loss_spike"
KILL_FAULT = "kill"

TRAINING_FAULT_KINDS = (NAN_GRAD_FAULT, LOSS_SPIKE_FAULT, KILL_FAULT)

#: injectable campaign-stage fault kinds
WORKER_KILL_FAULT = "worker_kill"
CACHE_CORRUPT_FAULT = "cache_corrupt_entry"
CACHE_TRUNCATE_FAULT = "cache_truncate_entry"

CAMPAIGN_FAULT_KINDS = (WORKER_KILL_FAULT, CACHE_CORRUPT_FAULT,
                        CACHE_TRUNCATE_FAULT)

#: injectable arena-stage fault kinds
GEN_KILL_FAULT = "gen_kill"
GENOME_KILL_FAULT = "genome_kill"
REVACCINATE_NAN_FAULT = "revaccinate_nan"
ARENA_CHECKPOINT_CORRUPT_FAULT = "gen_checkpoint_corrupt"
GATE_REGRESS_FAULT = "gate_regress"

ARENA_FAULT_KINDS = (GEN_KILL_FAULT, GENOME_KILL_FAULT,
                     REVACCINATE_NAN_FAULT,
                     ARENA_CHECKPOINT_CORRUPT_FAULT, GATE_REGRESS_FAULT)

#: injectable serving-stage fault kinds
SLOW_TENANT_FAULT = "slow_tenant"
BURST_ARRIVAL_FAULT = "burst_arrival"
NAN_WINDOW_FAULT = "nan_window"
DETECTOR_EXCEPTION_FAULT = "detector_exception"

SERVE_FAULT_KINDS = (SLOW_TENANT_FAULT, BURST_ARRIVAL_FAULT,
                     NAN_WINDOW_FAULT, DETECTOR_EXCEPTION_FAULT)

#: finite sentinel value a ``detector_exception`` fault plants in a
#: window's first counter: it passes every input-finiteness check, then
#: makes the chaos-wrapped detector raise mid-batch — a deterministic
#: stand-in for "the model blew up on this tenant's window"
DETECTOR_POISON_SENTINEL = -987654321.0


class ChaosCrash(RuntimeTaskError):
    """The exception a crash-fault raises inside the worker."""


class ChaosKill(RuntimeTaskError):
    """Raised by a ``kill`` training fault: simulates the process dying
    mid-training (between two checkpoints).  Tests catch it and then
    exercise the resume path."""


class FaultSpec:
    """What to inject and for how long.

    ``fail_attempts`` is the number of leading attempts that fault; an
    attempt beyond it runs clean.  The default (a huge number) makes the
    fault persistent, which is how quarantine paths are exercised.
    """

    def __init__(self, kind, fail_attempts=10 ** 9, hang_seconds=3600.0):
        if kind not in (CRASH_FAULT, HANG_FAULT, GARBAGE_FAULT):
            raise ValueError(f"unknown fault kind {kind!r}")
        self.kind = kind
        self.fail_attempts = fail_attempts
        self.hang_seconds = hang_seconds

    def active(self, attempt):
        return attempt <= self.fail_attempts


class ChaosSource:
    """A source wrapper that misbehaves on demand.

    Proxies the source interface (``build``, ``max_cycles``, ``name``,
    ``category``, ``seed``) so it is a drop-in replacement anywhere a
    real attack or workload is accepted, and exposes the two hooks the
    parallel collector honours:

    * ``chaos_inject(attempt)`` — runs *before* the simulation; raises
      (crash) or sleeps past any sane deadline (hang);
    * ``chaos_mutate(records, attempt)`` — runs *after* the simulation;
      corrupts the collected records (garbage / divergent trace).
    """

    def __init__(self, inner, fault, seed=0):
        self.inner = inner
        self.fault = fault
        self.chaos_seed = seed
        self.name = getattr(inner, "name", type(inner).__name__)
        self.category = getattr(inner, "category", "benign")
        self.seed = getattr(inner, "seed", 0)

    def build(self):
        return self.inner.build()

    def max_cycles(self):
        if hasattr(self.inner, "max_cycles"):
            return self.inner.max_cycles()
        return 400_000

    # -- hooks invoked by the collection worker -------------------------------

    def chaos_inject(self, attempt):
        if not self.fault.active(attempt):
            return
        if self.fault.kind == CRASH_FAULT:
            raise ChaosCrash(
                f"injected crash in {self.name} (attempt {attempt})")
        if self.fault.kind == HANG_FAULT:
            time.sleep(self.fault.hang_seconds)

    def chaos_mutate(self, records, attempt):
        if self.fault.kind != GARBAGE_FAULT or not self.fault.active(attempt):
            return records
        rng = random.Random((self.chaos_seed << 16) ^ attempt)
        corrupted = []
        for record in records:
            deltas = list(record.deltas)
            if deltas and rng.random() < 0.5:
                deltas = deltas[: max(1, len(deltas) // 2)]   # wrong width
            if deltas:
                deltas[rng.randrange(len(deltas))] = -rng.randrange(1, 99)
            record.deltas = deltas
            corrupted.append(record)
        return corrupted


class TrainingFault:
    """One training-stage fault: ``kind`` at iteration ``at``.

    ``nan_grad`` poisons one parameter of the target network with NaN
    right after the iteration's optimizer steps (indistinguishable from
    a NaN that propagated out of an exploded gradient); ``loss_spike``
    multiplies the parameters by ``scale`` so the next loss detaches
    from its EMA; ``kill`` raises :class:`ChaosKill` before the
    iteration runs.
    """

    def __init__(self, kind, at, scale=1e4):
        if kind not in TRAINING_FAULT_KINDS:
            raise ValueError(f"unknown training fault kind {kind!r}")
        self.kind = kind
        self.at = at
        self.scale = scale


class TrainingChaos:
    """Deterministic fault injector for guarded training loops.

    The training loop calls :meth:`maybe_kill` at the top of each
    iteration and :meth:`corrupt` after its optimizer steps.  Every
    fault fires exactly once (keyed by its position in ``faults``), so
    a guard rollback that replays the faulted iteration sees a clean
    retry — the deterministic analogue of a transient glitch.
    """

    def __init__(self, faults):
        self.faults = list(faults)
        self.fired = set()

    def _due(self, iteration, kinds):
        for i, fault in enumerate(self.faults):
            if i not in self.fired and fault.at == iteration \
                    and fault.kind in kinds:
                self.fired.add(i)
                return fault
        return None

    def maybe_kill(self, iteration):
        fault = self._due(iteration, (KILL_FAULT,))
        if fault is not None:
            raise ChaosKill(f"injected kill at iteration {iteration}")

    def corrupt(self, iteration, networks):
        """Apply any due nan_grad / loss_spike fault to ``networks``
        (a mapping of name -> MLP); returns the fault or ``None``."""
        fault = self._due(iteration, (NAN_GRAD_FAULT, LOSS_SPIKE_FAULT))
        if fault is None:
            return None
        net = next(iter(networks.values()))
        if fault.kind == NAN_GRAD_FAULT:
            params = net.parameters
            params[0].flat[0] = float("nan")
        else:
            for p in net.parameters:
                p *= fault.scale
        return fault


class CampaignFault:
    """One campaign-stage fault aimed at one matrix cell.

    ``cell`` is the cell's position in the expanded matrix (its
    ``index``).  ``worker_kill`` SIGKILLs the worker process mid-cell on
    the first ``fail_attempts`` attempts (the default makes it
    persistent, so the cell quarantines as a ``crash`` hole; set it
    below the runner's retry budget to rehearse recovery instead).
    ``cache_corrupt_entry`` flips a byte in the cell's just-written
    cache entry; ``cache_truncate_entry`` cuts the file short — both
    fail read-back verification and quarantine the cell
    ``cache_corrupt``.
    """

    def __init__(self, kind, cell, fail_attempts=10 ** 9):
        if kind not in CAMPAIGN_FAULT_KINDS:
            raise ValueError(f"unknown campaign fault kind {kind!r}")
        self.kind = kind
        self.cell = cell
        self.fail_attempts = fail_attempts


class CampaignChaos:
    """Deterministic fault injector for campaign runs.

    Worker kills are *shipped into* the cell payload (as a plain
    ``fail_attempts`` count) so the fault fires inside the isolated
    worker process with no shared state; cache faults run parent-side
    via :meth:`mangle_entry` right after the orchestrator persists a
    cell, and fire **once** per fault — a resumed campaign re-executes
    the quarantined cell clean, like a transient disk glitch.
    """

    def __init__(self, faults):
        self.faults = list(faults)
        self.fired = set()

    def kill_attempts(self, cell_index):
        """How many leading attempts of this cell the worker must die
        on (0 = no kill fault aimed here)."""
        return max((f.fail_attempts for f in self.faults
                    if f.kind == WORKER_KILL_FAULT and f.cell == cell_index),
                   default=0)

    def mangle_entry(self, cell_index, path):
        """Corrupt/truncate the cache entry at ``path`` if a due fault
        targets this cell; returns the fault or ``None``."""
        for i, fault in enumerate(self.faults):
            if i in self.fired or fault.cell != cell_index \
                    or fault.kind not in (CACHE_CORRUPT_FAULT,
                                          CACHE_TRUNCATE_FAULT):
                continue
            self.fired.add(i)
            with open(path, "rb") as f:
                data = f.read()
            if fault.kind == CACHE_TRUNCATE_FAULT:
                data = data[: len(data) // 3]
            else:
                pos = len(data) // 2
                data = data[:pos] + bytes([(data[pos] + 1) % 256]) \
                    + data[pos + 1:]
            # deliberately torn in place: this *is* the disk corruption
            # the verified cache must catch, so it must not go through
            # the atomic writer it is attacking
            with open(path, "wb") as f:  # repro-lint: disable=atomic-io
                f.write(data)
            return fault
        return None


class ArenaFault:
    """One arena-stage fault aimed at one generation of the arms race.

    * ``gen_kill`` — raise :class:`ChaosKill` when generation
      ``generation`` reaches phase ``phase`` (``evaluate`` /
      ``revaccinate`` / ``checkpoint``): the deterministic stand-in for
      a SIGKILL mid-generation, which tests catch before exercising
      ``--resume``;
    * ``genome_kill`` — the worker evaluating genome index ``genome``
      of that generation SIGKILLs itself on its first ``fail_attempts``
      attempts (persistent by default, so the genome quarantines as a
      ``crash`` hole);
    * ``revaccinate_nan`` — the generation's re-vaccination round gets a
      :class:`TrainingChaos` NaN-gradient fault at GAN iteration
      ``at_iteration`` (the guard must roll back and retry clean);
    * ``gen_checkpoint_corrupt`` — flips a byte in the generation's
      just-written checkpoint shard, so a later resume must drop it,
      fall back to the previous generation, and classify the hole;
    * ``gate_regress`` — sabotages the candidate detector *before* the
      regression gate (threshold forced to 0, so every benign window
      flags): the gate must trip, roll back to the incumbent, and
      re-draw the survivor pool.
    """

    def __init__(self, kind, generation, genome=None, at_iteration=1,
                 fail_attempts=10 ** 9, phase="evaluate"):
        if kind not in ARENA_FAULT_KINDS:
            raise ValueError(f"unknown arena fault kind {kind!r}")
        self.kind = kind
        self.generation = generation
        self.genome = genome
        self.at_iteration = at_iteration
        self.fail_attempts = fail_attempts
        self.phase = phase


class ArenaChaos:
    """Deterministic fault injector for arena (arms-race) runs.

    Genome kills are shipped into the worker payload as a plain
    ``fail_attempts`` count (no shared state crosses the process
    boundary); training faults are delegated to a per-generation
    :class:`TrainingChaos`; checkpoint corruption and gate sabotage run
    parent-side and fire **once** per fault, so a resumed arena replays
    the wounded generation clean.
    """

    def __init__(self, faults):
        self.faults = list(faults)
        self.fired = set()

    def maybe_kill(self, generation, phase):
        """Raise :class:`ChaosKill` when a due ``gen_kill`` fault targets
        this (generation, phase) boundary."""
        for i, fault in enumerate(self.faults):
            if i in self.fired or fault.kind != GEN_KILL_FAULT \
                    or fault.generation != generation \
                    or fault.phase != phase:
                continue
            self.fired.add(i)
            raise ChaosKill(f"injected kill in generation {generation} "
                            f"at phase {phase!r}")

    def kill_attempts(self, generation, genome_index):
        """How many leading attempts of this genome's evaluation the
        worker must die on (0 = no kill fault aimed here)."""
        return max((f.fail_attempts for f in self.faults
                    if f.kind == GENOME_KILL_FAULT
                    and f.generation == generation
                    and f.genome == genome_index), default=0)

    def training_chaos(self, generation):
        """A :class:`TrainingChaos` for this generation's re-vaccination
        round, or ``None`` when no training fault targets it."""
        faults = [TrainingFault(NAN_GRAD_FAULT, at=f.at_iteration)
                  for f in self.faults
                  if f.kind == REVACCINATE_NAN_FAULT
                  and f.generation == generation]
        return TrainingChaos(faults) if faults else None

    def sabotage_candidate(self, generation, detector):
        """Wreck a due generation's candidate detector ahead of the
        regression gate (threshold forced to 0.0: every window flags,
        so the FP budget must trip); returns the fault or ``None``."""
        for i, fault in enumerate(self.faults):
            if i in self.fired or fault.kind != GATE_REGRESS_FAULT \
                    or fault.generation != generation:
                continue
            self.fired.add(i)
            detector.threshold = 0.0
            return fault
        return None

    def mangle_checkpoint(self, generation, path):
        """Flip a byte in the generation's checkpoint shard at ``path``
        if a due fault targets it; returns the fault or ``None``."""
        for i, fault in enumerate(self.faults):
            if i in self.fired \
                    or fault.kind != ARENA_CHECKPOINT_CORRUPT_FAULT \
                    or fault.generation != generation:
                continue
            self.fired.add(i)
            with open(path, "rb") as f:
                data = f.read()
            pos = len(data) // 2
            data = data[:pos] + bytes([(data[pos] + 1) % 256]) \
                + data[pos + 1:]
            # deliberately torn in place: this *is* the disk corruption
            # the checksummed checkpoint store must catch on resume, so
            # it must not go through the atomic writer it is attacking
            with open(path, "wb") as f:  # repro-lint: disable=atomic-io
                f.write(data)
            return fault
        return None


class ServeFault:
    """One serving-stage fault aimed at one tenant's stream.

    * ``slow_tenant`` — the tenant emits a window only every ``every``
      ticks (a straggler starving its own stream, not its siblings);
    * ``burst_arrival`` — at tick ``at_tick`` the tenant emits
      ``windows`` windows at once (an arrival spike that must drive
      queue-overflow shedding, never an unbounded queue);
    * ``nan_window`` — the tenant's window at ``at_tick`` is replaced
      with non-finite deltas (the malformed-feature fault the
      fail-secure watchdog must catch *per tenant* in the batched path);
    * ``detector_exception`` — the tenant's window at ``at_tick`` is
      planted with :data:`DETECTOR_POISON_SENTINEL`, and the
      chaos-wrapped detector raises whenever a batch contains it — the
      service must fall back to per-window attribution and latch only
      the offending tenant.
    """

    def __init__(self, kind, tenant, at_tick=None, every=2, windows=64):
        if kind not in SERVE_FAULT_KINDS:
            raise ValueError(f"unknown serve fault kind {kind!r}")
        if kind != SLOW_TENANT_FAULT and at_tick is None:
            raise ValueError(f"{kind} fault needs at_tick")
        self.kind = kind
        self.tenant = tenant
        self.at_tick = at_tick
        self.every = every
        self.windows = windows


class _ChaosDetector:
    """Detector proxy that raises on batches holding a poisoned window.

    Wraps anything with a ``score_batch``; every other attribute
    passes through, so it drops into the serving layer wherever a real
    detector is accepted.
    """

    def __init__(self, inner):
        self.inner = inner

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def score_batch(self, deltas):
        if np.any(deltas == DETECTOR_POISON_SENTINEL):
            raise RuntimeError("injected detector exception "
                               "(poisoned window in batch)")
        return self.inner.score_batch(deltas)


class ServeChaos:
    """Deterministic fault injector for streaming-inference runs.

    The serve driver consults :meth:`emit_count` for each (tenant,
    tick) arrival and :meth:`poison` for each emitted window; detector
    faults additionally require wrapping the detector with
    :meth:`wrap_detector` so the planted sentinel actually raises.
    All activations are pure functions of (tenant, tick), so a chaos
    run is exactly replayable.
    """

    def __init__(self, faults):
        self.faults = list(faults)

    def wrap_detector(self, detector):
        if any(f.kind == DETECTOR_EXCEPTION_FAULT for f in self.faults):
            return _ChaosDetector(detector)
        return detector

    def emit_count(self, tenant, tick):
        """How many windows this tenant emits this tick (default 1)."""
        count = 1
        for fault in self.faults:
            if fault.tenant != tenant:
                continue
            if fault.kind == SLOW_TENANT_FAULT and tick % fault.every:
                count = 0
            elif fault.kind == BURST_ARRIVAL_FAULT \
                    and tick == fault.at_tick:
                count = fault.windows
        return count

    def poison(self, tenant, tick, window):
        """Return the (possibly corrupted) window for this arrival."""
        for fault in self.faults:
            if fault.tenant != tenant or fault.at_tick != tick:
                continue
            if fault.kind == NAN_WINDOW_FAULT:
                window = np.array(window, dtype=float)
                window[0] = float("nan")
                return window
            if fault.kind == DETECTOR_EXCEPTION_FAULT:
                window = np.array(window, dtype=float)
                window[0] = DETECTOR_POISON_SENTINEL
                return window
        return window


def chaos_kill_self():
    """SIGKILL the calling process — the worker-side half of a
    ``worker_kill`` fault.  Dies without unwinding, so the parent sees
    a silent child death (exit ``-SIGKILL``), exactly like the OOM
    killer or a segfault."""
    os.kill(os.getpid(), 9)


def inject_faults(sources, plan, seed=0):
    """Wrap ``sources`` (a list) per ``plan``: a mapping of list index ->
    :class:`FaultSpec`.  Unlisted sources pass through untouched."""
    wrapped = []
    for i, source in enumerate(sources):
        if i in plan:
            wrapped.append(ChaosSource(source, plan[i], seed=seed + i))
        else:
            wrapped.append(source)
    return wrapped
