"""Error taxonomy for the resilient task-execution layer.

Every terminal task failure is classified into one of three kinds so the
corpus health summary can distinguish *why* sources were lost:

``crash``
    The worker raised an exception or its process died outright
    (non-zero exit, signal, segfault).
``timeout``
    The worker exceeded its per-task deadline and was terminated.
``divergent``
    The worker finished but produced records that fail validation —
    a divergent trace (wrong delta width, negative counters, no
    samples at all).

The campaign layer adds one more terminal kind:

``cache_corrupt``
    A completed cell could not be durably cached — its cache entry
    failed read-back verification (checksum/fingerprint mismatch or a
    truncated/unparseable file) and was quarantined.

The arena (arms-race) layer adds three more terminal kinds for its
per-generation holes:

``gate_regression``
    A re-vaccinated candidate detector exceeded the held-out FP/FN
    budget versus the incumbent and was rolled back.
``training_diverged``
    A generation's re-vaccination round could not be stabilised by the
    training guard; the incumbent detector was kept.
``checkpoint_corrupt``
    A generation checkpoint shard failed its checksum on resume and was
    dropped; the generation was re-executed from the previous one.
"""

#: failure-kind constants (the error taxonomy)
CRASH = "crash"
TIMEOUT = "timeout"
DIVERGENT = "divergent"
CACHE_CORRUPT = "cache_corrupt"
GATE_REGRESSION = "gate_regression"
TRAINING_DIVERGED = "training_diverged"
CHECKPOINT_CORRUPT = "checkpoint_corrupt"

FAILURE_KINDS = (CRASH, TIMEOUT, DIVERGENT)

#: the campaign layer's cell-failure taxonomy (holes in the matrix)
CAMPAIGN_FAILURE_KINDS = FAILURE_KINDS + (CACHE_CORRUPT,)

#: the arena layer's per-generation hole taxonomy
ARENA_FAILURE_KINDS = FAILURE_KINDS + (GATE_REGRESSION, TRAINING_DIVERGED,
                                       CHECKPOINT_CORRUPT)


class RuntimeTaskError(Exception):
    """Base class for repro.runtime errors."""


class DivergentTraceError(RuntimeTaskError):
    """A completed task returned structurally invalid output."""


class CheckpointError(RuntimeTaskError):
    """The checkpoint directory is unusable (context mismatch,
    unreadable manifest)."""


class CellCorruptError(RuntimeTaskError):
    """A campaign cache entry failed verification (checksum or
    fingerprint mismatch, truncated or unparseable file).  Carries the
    machine-readable ``reason``."""

    def __init__(self, message, reason="corrupt"):
        super().__init__(message)
        self.reason = reason


class CampaignError(RuntimeTaskError):
    """The campaign directory is unusable (spec mismatch on resume,
    unreadable campaign manifest)."""


class ArenaError(RuntimeTaskError):
    """The arena run cannot proceed at all (invalid spec, spec mismatch
    on resume, no incumbent detector to ratchet from)."""


class CoverageError(RuntimeTaskError):
    """Too many sources were lost: corpus coverage fell below the
    configured ``min_coverage`` gate.  Carries the
    :class:`~repro.runtime.report.FailureReport` (``.report``) and the
    partial dataset built so far (``.partial``)."""

    def __init__(self, message, report=None, partial=None):
        super().__init__(message)
        self.report = report
        self.partial = partial
