"""Error taxonomy for the resilient task-execution layer.

Every terminal task failure is classified into one of three kinds so the
corpus health summary can distinguish *why* sources were lost:

``crash``
    The worker raised an exception or its process died outright
    (non-zero exit, signal, segfault).
``timeout``
    The worker exceeded its per-task deadline and was terminated.
``divergent``
    The worker finished but produced records that fail validation —
    a divergent trace (wrong delta width, negative counters, no
    samples at all).
"""

#: failure-kind constants (the error taxonomy)
CRASH = "crash"
TIMEOUT = "timeout"
DIVERGENT = "divergent"

FAILURE_KINDS = (CRASH, TIMEOUT, DIVERGENT)


class RuntimeTaskError(Exception):
    """Base class for repro.runtime errors."""


class DivergentTraceError(RuntimeTaskError):
    """A completed task returned structurally invalid output."""


class CheckpointError(RuntimeTaskError):
    """The checkpoint directory is unusable (context mismatch,
    unreadable manifest)."""


class CoverageError(RuntimeTaskError):
    """Too many sources were lost: corpus coverage fell below the
    configured ``min_coverage`` gate.  Carries the
    :class:`~repro.runtime.report.FailureReport` (``.report``) and the
    partial dataset built so far (``.partial``)."""

    def __init__(self, message, report=None, partial=None):
        super().__init__(message)
        self.report = report
        self.partial = partial
