"""Resilient task-execution layer for corpus construction.

``repro.runtime`` is the fault-tolerance substrate under the data
pipeline: isolated per-task worker processes with timeouts and
deterministic-backoff retries (:mod:`~repro.runtime.runner`),
atomic checkpoint shards with a manifest for resumable builds
(:mod:`~repro.runtime.checkpoint`), explicit failure accounting and
coverage gating (:mod:`~repro.runtime.report`), and a seeded
fault-injection harness (:mod:`~repro.runtime.chaos`) that makes all of
the above testable in CI.
"""

from repro.runtime.atomic import atomic_write_bytes, sha256_bytes, sha256_file
from repro.runtime.chaos import (
    CRASH_FAULT, GARBAGE_FAULT, HANG_FAULT, KILL_FAULT, LOSS_SPIKE_FAULT,
    NAN_GRAD_FAULT, TRAINING_FAULT_KINDS, ChaosCrash, ChaosKill,
    ChaosSource, FaultSpec, TrainingChaos, TrainingFault, inject_faults,
)
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.errors import (
    CRASH, DIVERGENT, FAILURE_KINDS, TIMEOUT, CheckpointError,
    CoverageError, DivergentTraceError, RuntimeTaskError,
)
from repro.runtime.report import FailureReport
from repro.runtime.runner import (
    Task, TaskFailure, TaskResult, TaskRunner, backoff_delay,
)

__all__ = [
    "atomic_write_bytes", "sha256_bytes", "sha256_file",
    "CRASH_FAULT", "GARBAGE_FAULT", "HANG_FAULT", "KILL_FAULT",
    "LOSS_SPIKE_FAULT", "NAN_GRAD_FAULT", "TRAINING_FAULT_KINDS",
    "ChaosCrash", "ChaosKill", "ChaosSource", "FaultSpec",
    "TrainingChaos", "TrainingFault", "inject_faults",
    "CheckpointStore",
    "CRASH", "DIVERGENT", "FAILURE_KINDS", "TIMEOUT", "CheckpointError",
    "CoverageError", "DivergentTraceError", "RuntimeTaskError",
    "FailureReport",
    "Task", "TaskFailure", "TaskResult", "TaskRunner", "backoff_delay",
]
