"""Resilient task-execution layer for corpus construction.

``repro.runtime`` is the fault-tolerance substrate under the data
pipeline: isolated per-task worker processes with timeouts and
deterministic-backoff retries (:mod:`~repro.runtime.runner`),
atomic checkpoint shards with a manifest for resumable builds
(:mod:`~repro.runtime.checkpoint`), explicit failure accounting and
coverage gating (:mod:`~repro.runtime.report`), and a seeded
fault-injection harness (:mod:`~repro.runtime.chaos`) that makes all of
the above testable in CI.
"""

from repro.runtime.atomic import (
    atomic_write_bytes, fsync_directory, sha256_bytes, sha256_file,
)
from repro.runtime.chaos import (
    ARENA_CHECKPOINT_CORRUPT_FAULT, ARENA_FAULT_KINDS, BURST_ARRIVAL_FAULT,
    CACHE_CORRUPT_FAULT, CACHE_TRUNCATE_FAULT, CAMPAIGN_FAULT_KINDS,
    CRASH_FAULT, DETECTOR_EXCEPTION_FAULT, DETECTOR_POISON_SENTINEL,
    GARBAGE_FAULT, GATE_REGRESS_FAULT, GEN_KILL_FAULT, GENOME_KILL_FAULT,
    HANG_FAULT, KILL_FAULT, LOSS_SPIKE_FAULT, NAN_GRAD_FAULT,
    NAN_WINDOW_FAULT, REVACCINATE_NAN_FAULT, SERVE_FAULT_KINDS,
    SLOW_TENANT_FAULT, TRAINING_FAULT_KINDS, WORKER_KILL_FAULT,
    ArenaChaos, ArenaFault, CampaignChaos, CampaignFault, ChaosCrash,
    ChaosKill, ChaosSource, FaultSpec, ServeChaos, ServeFault,
    TrainingChaos, TrainingFault, chaos_kill_self, inject_faults,
)
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.errors import (
    ARENA_FAILURE_KINDS, CACHE_CORRUPT, CAMPAIGN_FAILURE_KINDS,
    CHECKPOINT_CORRUPT, CRASH, DIVERGENT, FAILURE_KINDS, GATE_REGRESSION,
    TIMEOUT, TRAINING_DIVERGED, ArenaError, CampaignError,
    CellCorruptError, CheckpointError, CoverageError, DivergentTraceError,
    RuntimeTaskError,
)
from repro.runtime.report import FailureReport
from repro.runtime.runner import (
    Task, TaskFailure, TaskResult, TaskRunner, backoff_delay,
)

__all__ = [
    "atomic_write_bytes", "fsync_directory", "sha256_bytes", "sha256_file",
    "ARENA_CHECKPOINT_CORRUPT_FAULT", "ARENA_FAULT_KINDS",
    "BURST_ARRIVAL_FAULT", "CACHE_CORRUPT_FAULT", "CACHE_TRUNCATE_FAULT",
    "CAMPAIGN_FAULT_KINDS", "CRASH_FAULT", "DETECTOR_EXCEPTION_FAULT",
    "DETECTOR_POISON_SENTINEL", "GARBAGE_FAULT", "GATE_REGRESS_FAULT",
    "GEN_KILL_FAULT", "GENOME_KILL_FAULT", "HANG_FAULT", "KILL_FAULT",
    "LOSS_SPIKE_FAULT", "NAN_GRAD_FAULT", "NAN_WINDOW_FAULT",
    "REVACCINATE_NAN_FAULT", "SERVE_FAULT_KINDS", "SLOW_TENANT_FAULT",
    "TRAINING_FAULT_KINDS", "WORKER_KILL_FAULT",
    "ArenaChaos", "ArenaFault", "CampaignChaos", "CampaignFault",
    "ChaosCrash", "ChaosKill", "ChaosSource", "FaultSpec",
    "ServeChaos", "ServeFault", "TrainingChaos", "TrainingFault",
    "chaos_kill_self", "inject_faults",
    "CheckpointStore",
    "ARENA_FAILURE_KINDS", "CACHE_CORRUPT", "CAMPAIGN_FAILURE_KINDS",
    "CHECKPOINT_CORRUPT", "CRASH", "DIVERGENT", "FAILURE_KINDS",
    "GATE_REGRESSION", "TIMEOUT", "TRAINING_DIVERGED", "ArenaError",
    "CampaignError", "CellCorruptError", "CheckpointError",
    "CoverageError", "DivergentTraceError", "RuntimeTaskError",
    "FailureReport",
    "Task", "TaskFailure", "TaskResult", "TaskRunner", "backoff_delay",
]
