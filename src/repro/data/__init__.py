"""Dataset layer: the 145-feature schema, normalization, trace collection."""

from repro.data.features import (
    BASE_FEATURES, ENGINEERED_FEATURES, FeatureSchema, MaxNormalizer,
)
from repro.data.dataset import (
    Dataset, SampleRecord, build_dataset, collect_source, validate_records,
)
from repro.data.io import (
    DatasetChecksumError, DatasetCorruptError, DatasetError,
    DatasetMissingError, DatasetSchemaError, load_dataset, save_dataset,
)

__all__ = [
    "BASE_FEATURES", "ENGINEERED_FEATURES", "FeatureSchema", "MaxNormalizer",
    "Dataset", "SampleRecord", "build_dataset", "collect_source",
    "validate_records",
    "save_dataset", "load_dataset",
    "DatasetError", "DatasetMissingError", "DatasetCorruptError",
    "DatasetChecksumError", "DatasetSchemaError",
]
