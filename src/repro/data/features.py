"""The 145-dimensional feature schema (paper Section VI-A).

The paper monitors 145 features: 133 selected hardware performance
counters plus 12 engineered security HPCs, each an AND-combination of raw
counters mined from the AM-GAN generator's hidden layer (Table I).  Raw
windows are per-window counter deltas; every feature is normalized over
the maximum value seen for that counter ("Statistics are normalized over
the maximum value of the counter", Section VII).
"""

import numpy as np

from repro.sim.hpc import COUNTER_NAMES, CounterBank

#: raw counters excluded from the base feature set: plain volume/capacity
#: totals that scale with any program and carry no security signal
_EXCLUDED = frozenset({
    "cpu.numCycles", "cpu.idleCycles", "fetch.cycles", "decode.insts",
    "rob.reads", "rob.writes", "iq.intInstQueueReads", "membus.pktCount",
    "dram.actRate", "icache.accesses", "dcache.accesses", "l2.accesses",
    "dtlb.rdAccesses",
})

#: the 133 base features, in COUNTER_NAMES order
BASE_FEATURES = tuple(n for n in COUNTER_NAMES if n not in _EXCLUDED)

#: the 12 engineered security HPCs: AND-combinations of raw counters.
#: Entries 1-7 are Table I of the paper verbatim (mapped to this
#: simulator's counter names); 8-12 complete the set of 12 the paper
#: reports, covering the MDS/LVI, Rowhammer/DRAMA, flush, trap and
#: contention channels.
ENGINEERED_FEATURES = (
    ("sec.squashedBytesReadWrQ", ("lsq.squashedLoads", "wrqueue.bytesRead")),
    ("sec.committedMapsUndone", ("rename.committedMaps", "rename.undoneMaps")),
    ("sec.memOrderDtlbMiss", ("iew.memOrderViolationEvents", "dtlb.rdMisses")),
    ("sec.squashedStoresForwLoads", ("lsq.squashedStores", "lsq.forwLoads")),
    ("sec.readSharedIgnoredResp", ("membus.transDist_ReadSharedReq",
                                   "lsq.ignoredResponses")),
    ("sec.squashedNonSpecLdMissLat", ("iq.squashedNonSpecLD",
                                      "dcache.ReadReq_mshr_miss_latency")),
    ("sec.serializingExecSquashed", ("rename.serializingInsts",
                                     "iew.execSquashedInsts")),
    ("sec.assistHitWrQ", ("lsq.assistForwards", "lsq.specLoadsHitWriteQueue")),
    ("sec.activationsBytesWrQ", ("dram.activations", "dram.bytesReadWrQ")),
    ("sec.flushHitIndirectMiss", ("dcache.flushHits",
                                  "branchPred.indirectMispredicted")),
    ("sec.trapsSquashedIssued", ("commit.traps", "iq.squashedInstsIssued")),
    ("sec.rngUnderflowPortConflict", ("rng.underflows",
                                      "iew.portContentionCycles")),
)


class FeatureSchema:
    """Maps raw counter-delta windows to normalized feature vectors.

    Parameters
    ----------
    engineered:
        Sequence of ``(name, (counter_a, counter_b, ...))`` AND-features.
        Defaults to :data:`ENGINEERED_FEATURES`; the automatic feature
        engineering pipeline (Section VI-A) passes its mined combinations
        instead.
    base:
        Raw counter names to expose directly (defaults to the 133
        :data:`BASE_FEATURES`; the PerSpectron baseline passes its smaller
        106-counter set).
    """

    def __init__(self, engineered=ENGINEERED_FEATURES, base=BASE_FEATURES):
        self.base_features = tuple(base)
        self.engineered = tuple(engineered)
        self._base_idx = [CounterBank.index_of(n) for n in self.base_features]
        self._eng_idx = [tuple(CounterBank.index_of(c) for c in combo)
                         for _, combo in self.engineered]
        # preresolved index arrays for the vectorized batch path
        self._base_idx_arr = np.asarray(self._base_idx, dtype=np.intp)
        self._eng_idx_arrs = [np.asarray(combo, dtype=np.intp)
                              for combo in self._eng_idx]

    @property
    def names(self):
        return tuple(self.base_features) + tuple(n for n, _ in self.engineered)

    @property
    def dim(self):
        return len(self.base_features) + len(self.engineered)

    def raw_vector(self, deltas):
        """Un-normalized feature values for one window of counter deltas.

        Engineered AND-features take the minimum of their member counters
        (the continuous analogue of "both signals fired"; zero whenever
        any member is silent).
        """
        base = [deltas[i] for i in self._base_idx]
        eng = [min(deltas[i] for i in combo) for combo in self._eng_idx]
        return np.asarray(base + eng, dtype=float)

    def matrix(self, windows):
        """Stack raw feature vectors for many windows."""
        return np.vstack([self.raw_vector(w) for w in windows]) if windows \
            else np.empty((0, self.dim))

    def raw_matrix(self, deltas, out=None):
        """Vectorized :meth:`raw_vector` over a ``(n, counters)`` array.

        One gather plus one ``np.minimum`` reduction per engineered
        feature — no per-window Python.  Every output row is bit-identical
        to ``raw_vector`` on the same window (gather and elementwise min
        are exact), which is what lets ``score_batch`` and the per-window
        serving path share one numerical contract; asserted by
        ``tests/serve/test_score_equivalence.py``.
        """
        deltas = np.asarray(deltas, dtype=float)
        if deltas.ndim != 2:
            raise ValueError(f"expected a (windows, counters) matrix, "
                             f"got shape {deltas.shape}")
        n_base = len(self._base_idx)
        if out is None:
            out = np.empty((deltas.shape[0], self.dim))
        np.take(deltas, self._base_idx_arr, axis=1, out=out[:, :n_base])
        for j, combo in enumerate(self._eng_idx_arrs):
            np.minimum.reduce([deltas[:, c] for c in combo],
                              out=out[:, n_base + j])
        return out


class MaxNormalizer:
    """Per-feature max normalization (paper Section VII)."""

    def __init__(self):
        self.max_values = None

    def fit(self, matrix):
        matrix = np.asarray(matrix, dtype=float)
        self.max_values = np.maximum(matrix.max(axis=0), 1e-9)
        return self

    def transform(self, matrix):
        if self.max_values is None:
            raise RuntimeError("fit() before transform()")
        return np.clip(np.asarray(matrix, dtype=float) / self.max_values,
                       0.0, 1.0)

    def transform_inplace(self, matrix):
        """Normalize a float matrix in place (no allocations).

        Elementwise divide + clip, bit-identical to :meth:`transform` on
        the same rows; the batched scoring path uses it to avoid two
        temporary ``(windows, features)`` copies per batch.
        """
        if self.max_values is None:
            raise RuntimeError("fit() before transform()")
        np.divide(matrix, self.max_values, out=matrix)
        np.clip(matrix, 0.0, 1.0, out=matrix)
        return matrix

    def fit_transform(self, matrix):
        return self.fit(matrix).transform(matrix)
