"""Trace collection and the labelled HPC-window dataset.

Mirrors the paper's methodology: run every attack and benign workload on
the simulator, sample all event counters every N committed instructions,
label windows by their source (attack vs benign) and attack phase (the
recovery/transmission phase is check-pointed so the cross-validation
setting can exclude it from test folds), and normalize per-counter over
the maximum seen value.
"""

import copy
from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.data.features import FeatureSchema, MaxNormalizer
from repro.runtime.errors import DivergentTraceError
from repro.sim import Machine, SimConfig
from repro.sim.hpc import COUNTER_NAMES


@dataclass
class SampleRecord:
    """One labelled HPC sampling window."""

    deltas: list             # raw counter deltas, COUNTER_NAMES order
    label: int               # 1 = attack window, 0 = benign
    category: str            # attack category or "benign"
    phase: int               # attack phase active in this window
    source: str              # program name
    commit_index: int


@dataclass
class Dataset:
    """A labelled collection of sampling windows."""

    records: List[SampleRecord] = field(default_factory=list)
    sample_period: int = 1000
    #: SHA-256 of the counter layout the corpus was collected under
    #: (set by ``load_dataset`` when the sidecar carries it; ``None``
    #: for in-process datasets and legacy corpora)
    counters_sha256: str = None

    def __len__(self):
        return len(self.records)

    def extend(self, records):
        self.records.extend(records)

    @property
    def categories(self):
        return sorted({r.category for r in self.records})

    def labels(self):
        return np.array([r.label for r in self.records])

    def groups(self):
        """Per-record category labels (for leave-one-attack-out folds)."""
        return np.array([r.category for r in self.records])

    def phases(self):
        return np.array([r.phase for r in self.records])

    def raw_matrix(self, schema):
        return schema.matrix([r.deltas for r in self.records])

    def features(self, schema=None, normalizer=None):
        """Return ``(X, y, schema, normalizer)`` with max-normalization
        fitted on this dataset unless one is supplied."""
        schema = schema if schema is not None else FeatureSchema()
        raw = self.raw_matrix(schema)
        if normalizer is None:
            normalizer = MaxNormalizer().fit(raw)
        return normalizer.transform(raw), self.labels(), schema, normalizer

    def subset(self, predicate):
        out = Dataset(sample_period=self.sample_period)
        out.records = [r for r in self.records if predicate(r)]
        return out

    def balance_counts(self):
        y = self.labels()
        return int((y == 1).sum()), int((y == 0).sum())


def validate_records(records):
    """Structural sanity check on one source's collected records.

    Raises :class:`~repro.runtime.errors.DivergentTraceError` when the
    trace is unusable: no samples, a delta vector of the wrong width,
    or non-integer / negative counter deltas.  The resilient collector
    runs this on every completed source so a divergent trace is
    quarantined instead of silently skewing the corpus.
    """
    if not records:
        raise DivergentTraceError("source produced no samples")
    width = len(COUNTER_NAMES)
    for i, record in enumerate(records):
        deltas = record.deltas
        if len(deltas) != width:
            raise DivergentTraceError(
                f"record {i} from {record.source!r} has {len(deltas)} "
                f"deltas, expected {width}")
        for value in deltas:
            if not isinstance(value, (int, np.integer)) \
                    or isinstance(value, bool) or value < 0:
                raise DivergentTraceError(
                    f"record {i} from {record.source!r} has invalid "
                    f"counter delta {value!r}")
        if record.label not in (0, 1):
            raise DivergentTraceError(
                f"record {i} from {record.source!r} has invalid label "
                f"{record.label!r}")
    return records


def _smt_co_tenant():
    """The deterministic sibling program for SMT collection.

    A fixed, seeded pointer-chase: memory-intensive enough to contend on
    every shared structure (L1/L2, DTLB, DRAM banks) without being an
    attack itself, and identical across collections so the noise axis is
    reproducible cell-to-cell.
    """
    from repro.workloads import WORKLOAD_BUILDERS
    return WORKLOAD_BUILDERS["pointer-chase"](scale=2, seed=97)


def collect_source(source, label, config=None, sample_period=250,
                   max_cycles=None, tenancy="single", co_program=None):
    """Run one attack or workload and convert its windows to records.

    ``tenancy="smt"`` runs the source as SMT thread 0 with a
    deterministic co-tenant program on thread 1 (``co_program``
    overrides it), so every window carries genuine cross-tenant
    interference noise; labels/phases still describe the source.
    """
    if tenancy not in ("single", "smt"):
        raise ValueError(f"unknown tenancy {tenancy!r}")
    program, actors = source.build()
    sim_config = copy.deepcopy(config) if config is not None else SimConfig()
    if max_cycles is None:
        max_cycles = source.max_cycles() if hasattr(source, "max_cycles") \
            else 400_000
    if tenancy == "smt":
        from repro.sim import SMTMachine
        sim_config.smt_contexts = 2
        sibling = co_program if co_program is not None else _smt_co_tenant()
        smt = SMTMachine(program, sibling, sim_config,
                         sample_period=sample_period, actors=actors)
        machine = smt.machine
        result = smt.run(max_cycles=max_cycles)
    else:
        machine = Machine(program, sim_config,
                          sample_period=sample_period, actors=actors)
        result = machine.run(max_cycles=max_cycles)
    records = []
    for sample in result.samples:
        records.append(SampleRecord(
            deltas=sample.deltas,
            label=label,
            category=getattr(source, "category", "benign"),
            phase=sample.phase,
            source=program.name,
            commit_index=sample.commit_index,
        ))
    return records, result, machine


def build_dataset(attacks, workloads, config=None, sample_period=250,
                  require_leak=False, tenancy="single"):
    """Collect a full labelled dataset from attack and workload instances.

    ``require_leak=True`` re-checks each attack's channel and drops runs
    that failed to leak (useful when fuzzed variants produce duds).
    ``tenancy="smt"`` collects every source under SMT co-tenancy noise
    (see :func:`collect_source`).
    """
    dataset = Dataset(sample_period=sample_period)
    for attack in attacks:
        records, result, machine = collect_source(
            attack, label=1, config=config, sample_period=sample_period,
            tenancy=tenancy)
        if require_leak:
            from repro.attacks.base import bits_balanced_accuracy
            recovered = attack.recover(machine, result)
            if bits_balanced_accuracy(attack.secret_bits, recovered) < 0.75:
                continue
        dataset.extend(records)
    for workload in workloads:
        records, _, _ = collect_source(workload, label=0, config=config,
                                       sample_period=sample_period,
                                       tenancy=tenancy)
        dataset.extend(records)
    return dataset
