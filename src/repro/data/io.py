"""Dataset persistence: trace corpora are expensive to collect (they are
full simulations), so they can be saved and reloaded as ``.npz`` bundles
with a JSON sidecar of labels and metadata."""

import json

import numpy as np

from repro.data.dataset import Dataset, SampleRecord


def save_dataset(dataset, path):
    """Write a dataset to ``path`` (.npz) plus ``path + '.meta.json'``."""
    deltas = np.array([r.deltas for r in dataset.records], dtype=np.int64)
    np.savez_compressed(path, deltas=deltas)
    meta = {
        "sample_period": dataset.sample_period,
        "records": [
            {
                "label": r.label,
                "category": r.category,
                "phase": r.phase,
                "source": r.source,
                "commit_index": r.commit_index,
            }
            for r in dataset.records
        ],
    }
    with open(_meta_path(path), "w") as f:
        json.dump(meta, f)


def load_dataset(path):
    """Load a dataset written by :func:`save_dataset`."""
    with np.load(_npz_path(path)) as data:
        deltas = data["deltas"]
    with open(_meta_path(path)) as f:
        meta = json.load(f)
    if len(meta["records"]) != len(deltas):
        raise ValueError("metadata and matrix row counts differ")
    dataset = Dataset(sample_period=meta["sample_period"])
    for row, rec in zip(deltas, meta["records"]):
        dataset.records.append(SampleRecord(
            deltas=row.tolist(),
            label=rec["label"],
            category=rec["category"],
            phase=rec["phase"],
            source=rec["source"],
            commit_index=rec["commit_index"],
        ))
    return dataset


def _npz_path(path):
    return path if path.endswith(".npz") else path + ".npz"


def _meta_path(path):
    base = path[:-4] if path.endswith(".npz") else path
    return base + ".meta.json"
