"""Dataset persistence: trace corpora are expensive to collect (they are
full simulations), so they can be saved and reloaded as ``.npz`` bundles
with a JSON sidecar of labels and metadata.

Writes are atomic and checksummed: both files land via temp-file +
``os.replace`` and the sidecar embeds the SHA-256 of the ``.npz``
payload, so an interrupted ``save_dataset`` can never leave a corpus
that loads but is silently wrong — :func:`load_dataset` either verifies
the pair or raises a typed :class:`DatasetError`.

The sidecar is written *first*: a kill between the two replaces leaves
new metadata pointing at the old matrix, which the checksum rejects
loudly, instead of an old sidecar that might coincidentally match a new
matrix.
"""

import io
import json
import zipfile

import numpy as np

from repro.data.dataset import Dataset, SampleRecord
from repro.runtime.atomic import atomic_write_bytes, sha256_bytes

#: sidecar format version (1 = legacy, no checksums)
FORMAT_VERSION = 2


def counter_layout_sha256():
    """SHA-256 over the live counter layout (``COUNTER_NAMES`` in
    order).  Stored in every corpus sidecar so a corpus collected under
    a different layout is detectable by one string comparison instead
    of silently mis-gathering columns."""
    import hashlib

    from repro.sim.hpc import COUNTER_NAMES
    return hashlib.sha256("\n".join(COUNTER_NAMES).encode()).hexdigest()


class DatasetError(ValueError):
    """Base class for corpus load/save failures (a ``ValueError`` so
    legacy callers that caught that still work)."""


class DatasetMissingError(DatasetError):
    """The corpus file or its metadata sidecar does not exist."""


class DatasetCorruptError(DatasetError):
    """A corpus file exists but cannot be parsed (truncated ``.npz``,
    malformed JSON)."""


class DatasetChecksumError(DatasetError):
    """The ``.npz`` payload does not match the digest recorded in its
    sidecar (torn write, stale pair, tampering)."""


class DatasetSchemaError(DatasetError):
    """The pair parses but is internally inconsistent (row-count
    mismatch, missing fields)."""


def record_to_dict(record, with_deltas=True):
    """JSON-serializable form of one :class:`SampleRecord`."""
    out = {
        "label": record.label,
        "category": record.category,
        "phase": record.phase,
        "source": record.source,
        "commit_index": record.commit_index,
    }
    if with_deltas:
        out["deltas"] = [int(d) for d in record.deltas]
    return out


def record_from_dict(data, deltas=None):
    """Inverse of :func:`record_to_dict` (``deltas`` overrides the
    embedded list when the matrix is stored separately)."""
    if deltas is None:
        deltas = data["deltas"]
    return SampleRecord(
        deltas=list(deltas),
        label=data["label"],
        category=data["category"],
        phase=data["phase"],
        source=data["source"],
        commit_index=data["commit_index"],
    )


def save_dataset(dataset, path):
    """Atomically write a dataset to ``path`` (.npz) plus
    ``path + '.meta.json'`` with embedded checksums."""
    deltas = np.array([r.deltas for r in dataset.records], dtype=np.int64)
    buffer = io.BytesIO()
    np.savez_compressed(buffer, deltas=deltas)
    npz_bytes = buffer.getvalue()
    meta = {
        "format_version": FORMAT_VERSION,
        "sample_period": dataset.sample_period,
        "n_records": len(dataset.records),
        "npz_sha256": sha256_bytes(npz_bytes),
        "counters_sha256": counter_layout_sha256(),
        "records": [record_to_dict(r, with_deltas=False)
                    for r in dataset.records],
    }
    atomic_write_bytes(_meta_path(path), json.dumps(meta).encode())
    atomic_write_bytes(_npz_path(path), npz_bytes)


def load_dataset(path):
    """Load and verify a dataset written by :func:`save_dataset`.

    Raises a typed :class:`DatasetError` subclass on any missing,
    truncated, mismatched or checksum-failing input.
    """
    npz_path, meta_path = _npz_path(path), _meta_path(path)
    meta = _read_meta(meta_path)
    deltas = _read_matrix(npz_path, meta)
    try:
        records = meta["records"]
        sample_period = meta["sample_period"]
    except (KeyError, TypeError) as exc:
        raise DatasetSchemaError(
            f"metadata sidecar {meta_path} missing field: {exc}") from exc
    if "n_records" in meta and meta["n_records"] != len(records):
        raise DatasetSchemaError(
            f"metadata sidecar {meta_path} declares {meta['n_records']} "
            f"records but lists {len(records)}")
    if len(records) != len(deltas):
        raise DatasetSchemaError(
            f"metadata and matrix row counts differ in {npz_path} "
            f"({len(records)} vs {len(deltas)})")
    dataset = Dataset(sample_period=sample_period)
    # legacy sidecars (pre-arena) carry no layout fingerprint -> None;
    # verify_corpus_compatible then falls back to width checks only
    dataset.counters_sha256 = meta.get("counters_sha256")
    try:
        for row, rec in zip(deltas, records):
            dataset.records.append(record_from_dict(rec, deltas=row.tolist()))
    except (KeyError, TypeError) as exc:
        raise DatasetSchemaError(
            f"malformed record entry in {meta_path}: {exc}") from exc
    return dataset


def _read_meta(meta_path):
    try:
        with open(meta_path, "rb") as f:
            raw = f.read()
    except FileNotFoundError:
        raise DatasetMissingError(
            f"metadata sidecar not found: {meta_path}") from None
    try:
        meta = json.loads(raw.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise DatasetCorruptError(
            f"unparseable metadata sidecar {meta_path}: {exc}") from exc
    if not isinstance(meta, dict):
        raise DatasetCorruptError(
            f"metadata sidecar {meta_path} is not a JSON object")
    return meta


def _read_matrix(npz_path, meta):
    try:
        with open(npz_path, "rb") as f:
            npz_bytes = f.read()
    except FileNotFoundError:
        raise DatasetMissingError(
            f"corpus matrix not found: {npz_path}") from None
    expected = meta.get("npz_sha256")
    if expected is not None and sha256_bytes(npz_bytes) != expected:
        raise DatasetChecksumError(
            f"checksum mismatch for {npz_path}: the matrix does not "
            f"match its metadata sidecar (torn write or stale pair)")
    try:
        with np.load(io.BytesIO(npz_bytes)) as data:
            return data["deltas"]
    except KeyError as exc:
        raise DatasetSchemaError(
            f"{npz_path} has no 'deltas' array") from exc
    except (zipfile.BadZipFile, OSError, ValueError, EOFError) as exc:
        raise DatasetCorruptError(
            f"unreadable corpus matrix {npz_path}: {exc}") from exc


def _npz_path(path):
    return path if path.endswith(".npz") else path + ".npz"


def _meta_path(path):
    base = path[:-4] if path.endswith(".npz") else path
    return base + ".meta.json"
