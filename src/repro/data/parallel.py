"""Resilient parallel trace collection.

Corpus construction runs one independent simulation per attack/workload
instance, which parallelizes perfectly across processes.  A full corpus
(22 attacks x seeds + the benign suite) drops from tens of seconds to a
few on a multicore host.

This used to be a bare ``multiprocessing.Pool.map`` — one crashed or
wedged worker destroyed the whole build and the full result list was
buffered in memory before any record reached the dataset.  It is now
built on :class:`repro.runtime.TaskRunner`:

* each source runs in its own worker with a timeout and bounded,
  deterministically-jittered retries;
* results stream back in submission order and are flushed into the
  dataset (and, when checkpointing, to per-source shard files plus a
  manifest) incrementally, so peak memory stays bounded and an
  interrupted build can ``resume``;
* sources that exhaust their retries are quarantined into a
  :class:`repro.runtime.FailureReport` (crash / timeout / divergent
  taxonomy) and the build completes with the surviving corpus — unless
  coverage falls below ``min_coverage``, which is a hard failure.

Record order still matches the sequential builder (all attacks in
order, then all workloads), so the resulting dataset is interchangeable.
"""

import os
import time

from repro.data.dataset import Dataset, collect_source, validate_records
from repro.data.io import record_from_dict, record_to_dict
from repro.obs import metrics, time_block
from repro.runtime import CheckpointStore, FailureReport, Task, TaskRunner


def _collect_one(task, attempt=1):
    """Worker entry: simulate one source (honouring chaos hooks)."""
    source, label, config, sample_period, tenancy = task
    inject = getattr(source, "chaos_inject", None)
    if inject is not None:
        inject(attempt)
    records, _, _ = collect_source(source, label=label, config=config,
                                   sample_period=sample_period,
                                   tenancy=tenancy)
    mutate = getattr(source, "chaos_mutate", None)
    if mutate is not None:
        records = mutate(records, attempt)
    return records


def source_key(index, source, label):
    """Stable per-source checkpoint/manifest key.

    The position index keeps keys unique and order-stable; the name and
    seed make manifests and failure reports human-readable.
    """
    name = getattr(source, "name", None) or \
        getattr(source, "category", type(source).__name__)
    seed = getattr(source, "seed", 0)
    kind = "atk" if label else "wl"
    return f"{index:03d}-{kind}-{name}-s{seed}"


def build_dataset_resilient(attacks, workloads, config=None,
                            sample_period=100, processes=None, retries=2,
                            task_timeout=None, checkpoint_dir=None,
                            resume=False, min_coverage=1.0,
                            backoff_base=0.05, progress=None,
                            tenancy="single"):
    """Fault-tolerant parallel corpus build.

    Returns ``(dataset, report)`` where ``report`` is a
    :class:`~repro.runtime.FailureReport` accounting for every source.
    Raises :class:`~repro.runtime.CoverageError` (carrying the report
    and the partial dataset) when coverage drops below ``min_coverage``.

    With ``checkpoint_dir`` set, each completed source is flushed to an
    atomic shard + manifest; ``resume=True`` skips sources whose shard
    verifies and re-simulates only the rest.
    """
    sources = [(a, 1) for a in attacks] + [(w, 0) for w in workloads]
    tasks = [Task(key=source_key(i, s, label),
                  payload=(s, label, config, sample_period, tenancy))
             for i, (s, label) in enumerate(sources)]
    if processes is None:
        processes = max(1, min(len(tasks) or 1, (os.cpu_count() or 2)))

    store = None
    done = set()
    if checkpoint_dir is not None:
        store = CheckpointStore(checkpoint_dir)
        store.open(context={"sample_period": sample_period,
                            "tenancy": tenancy,
                            "keys": [t.key for t in tasks]},
                   resume=resume)
        done = set(store.valid_keys()) & {t.key for t in tasks}

    dataset = Dataset(sample_period=sample_period)
    report = FailureReport(total=len(tasks), skipped=len(done))
    runner = TaskRunner(_collect_one, processes=processes, retries=retries,
                        timeout=task_timeout, backoff_base=backoff_base,
                        validator=validate_records)
    results = runner.run([t for t in tasks if t.key not in done])

    reg = metrics()
    started = time.monotonic()
    with time_block("data.build.seconds"):
        for task in tasks:
            if task.key in done:
                payload = store.get(task.key)
                restored = [record_from_dict(r)
                            for r in payload["records"]]
                dataset.extend(restored)
                reg.inc("data.sources.restored")
                reg.inc("data.records", len(restored))
                continue
            outcome = next(results)
            if outcome.ok:
                if store is not None:
                    store.put(task.key, {"records": [record_to_dict(r)
                                                     for r in outcome.value]})
                dataset.extend(outcome.value)
                report.completed += 1
                reg.inc("data.sources.completed")
                reg.inc("data.records", len(outcome.value))
            else:
                report.failures.append(outcome)
            if progress is not None:
                progress(outcome)
    report.elapsed = time.monotonic() - started
    reg.set_gauge("data.coverage", report.coverage)
    report.require_coverage(min_coverage, partial=dataset)
    return dataset, report


def build_dataset_parallel(attacks, workloads, config=None,
                           sample_period=100, processes=None, **kwargs):
    """Parallel equivalent of :func:`repro.data.build_dataset`.

    Record order matches the sequential builder (all attacks in order,
    then all workloads), so the resulting dataset is interchangeable.
    Thin wrapper over :func:`build_dataset_resilient` that keeps the
    historical return type; by default any permanently-failed source is
    a hard error (``min_coverage=1.0``), matching the old fail-loud
    behavior but with retries and isolation underneath.
    """
    dataset, _ = build_dataset_resilient(
        attacks, workloads, config=config, sample_period=sample_period,
        processes=processes, **kwargs)
    return dataset
