"""Parallel trace collection.

Corpus construction runs one independent simulation per attack/workload
instance, which parallelizes perfectly across processes.  A full corpus
(22 attacks x seeds + the benign suite) drops from tens of seconds to a
few on a multicore host.
"""

import multiprocessing
import os

from repro.data.dataset import Dataset, collect_source


def _collect_one(task):
    source, label, config, sample_period = task
    records, _, _ = collect_source(source, label=label, config=config,
                                   sample_period=sample_period)
    return records


def build_dataset_parallel(attacks, workloads, config=None,
                           sample_period=100, processes=None):
    """Parallel equivalent of :func:`repro.data.build_dataset`.

    Record order matches the sequential builder (all attacks in order,
    then all workloads), so the resulting dataset is interchangeable.
    """
    tasks = [(a, 1, config, sample_period) for a in attacks]
    tasks += [(w, 0, config, sample_period) for w in workloads]
    if processes is None:
        processes = max(1, min(len(tasks), (os.cpu_count() or 2)))
    dataset = Dataset(sample_period=sample_period)
    if processes == 1 or len(tasks) <= 1:
        for task in tasks:
            dataset.extend(_collect_one(task))
        return dataset
    with multiprocessing.Pool(processes) as pool:
        for records in pool.map(_collect_one, tasks):
            dataset.extend(records)
    return dataset
